package server

import (
	"net/http"
	"strconv"

	"ftbfs"
	"ftbfs/internal/telemetry"
	"ftbfs/internal/wire"
)

// serverMetrics is the registry behind the shard's /metrics: request totals,
// per-route and per-frame-type latency histograms, and the queue-wait
// histogram that feeds Retry-After. Every pointer is resolved at New — the
// request path indexes arrays and maps built once, formatting nothing.
type serverMetrics struct {
	reg *telemetry.Registry

	requests     *telemetry.Counter // HTTP requests accepted
	wireRequests *telemetry.Counter // binary-protocol requests accepted
	queries      *telemetry.Counter // individual distance queries answered
	errs         *telemetry.Counter // requests answered with an error status
	shed         *telemetry.Counter // requests refused by the load shedder

	// httpByRoute holds one outcome-labeled histogram per registered route;
	// the map is never written after New, so lookups are safe without a lock.
	httpByRoute map[string]*telemetry.OutcomeHist

	// wireByType is indexed by wire frame type (TDist..TMutate); unused slots
	// stay nil and OutcomeHist.Observe tolerates nil receivers.
	wireByType [wire.TMutate + 1]*telemetry.OutcomeHist

	// queueWait times requests that waited in the shedder's bounded queue
	// (the fast no-queue path records nothing); its live p50 derives the
	// Retry-After answer on shed responses.
	queueWait *telemetry.Histogram
}

// wireTypeNames label the wire request histograms; index = frame type.
var wireTypeNames = [wire.TMutate + 1]string{
	wire.TDist:               "dist",
	wire.TDistAvoiding:       "dist_avoiding",
	wire.TDistAvoidingVertex: "dist_avoiding_vertex",
	wire.TBatch:              "batch",
	wire.TMutate:             "mutate",
}

// newServerMetrics builds the shard registry, pre-registering one histogram
// family per route/frame type and adopting the process-wide query-plan
// counters as snapshot-time funcs.
func newServerMetrics(routes []string) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.Counter("ftbfs_requests_total", `transport="http"`,
			"Requests accepted, by transport."),
		wireRequests: reg.Counter("ftbfs_requests_total", `transport="wire"`,
			"Requests accepted, by transport."),
		queries: reg.Counter("ftbfs_queries_total", "",
			"Individual distance queries answered."),
		errs: reg.Counter("ftbfs_request_errors_total", "",
			"Requests answered with an error status."),
		shed: reg.Counter("ftbfs_shed_total", "",
			"Requests refused by the load shedder."),
		httpByRoute: make(map[string]*telemetry.OutcomeHist, len(routes)),
		queueWait: reg.Histogram("ftbfs_queue_wait_seconds", "",
			"Time requests waited in the shedder queue before a work slot freed."),
	}
	for _, route := range routes {
		m.httpByRoute[route] = reg.OutcomeHist("ftbfs_http_request_seconds",
			`route="`+route+`"`, "HTTP request latency by route and outcome.")
	}
	for typ, name := range wireTypeNames {
		if name == "" {
			continue
		}
		m.wireByType[typ] = reg.OutcomeHist("ftbfs_wire_request_seconds",
			`type="`+name+`"`, "Wire request latency by frame type and outcome.")
	}
	planCount := func(pick func(eh, er, vh, vr uint64) uint64) func() uint64 {
		return func() uint64 { return pick(ftbfs.PlanQueryCounts()) }
	}
	const planHelp = "Failure queries by answer path: O(1) plan hits vs subtree repairs."
	reg.CounterFunc("ftbfs_plan_queries_total", `model="edge",path="hit"`, planHelp,
		planCount(func(eh, _, _, _ uint64) uint64 { return eh }))
	reg.CounterFunc("ftbfs_plan_queries_total", `model="edge",path="repair"`, planHelp,
		planCount(func(_, er, _, _ uint64) uint64 { return er }))
	reg.CounterFunc("ftbfs_plan_queries_total", `model="vertex",path="hit"`, planHelp,
		planCount(func(_, _, vh, _ uint64) uint64 { return vh }))
	reg.CounterFunc("ftbfs_plan_queries_total", `model="vertex",path="repair"`, planHelp,
		planCount(func(_, _, _, vr uint64) uint64 { return vr }))
	return m
}

// retryAfterSecs derives the Retry-After hint on shed responses from the
// observed queue-wait p50, clamped to [1, 5] seconds: a lightly backed-up
// node invites a quick retry, a deeply backed-up one pushes callers further
// out instead of inviting a synchronized stampede one second later.
func (m *serverMetrics) retryAfterSecs() string {
	p50 := m.queueWait.Quantile(0.5)
	secs := (p50 + 1e9 - 1) / 1e9
	if secs < 1 {
		secs = 1
	}
	if secs > 5 {
		secs = 5
	}
	return strconv.FormatInt(secs, 10)
}

// statusWriter captures the status code a handler writes, so ServeHTTP can
// label its latency observation with the request outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// bufferedWriter additionally buffers the body of a traced request: the
// span header must be set before the first body byte reaches the client, and
// the spans are only complete once the handler returns. Traced requests are
// a sampled minority, so the extra copy never touches the hot path.
type bufferedWriter struct {
	statusWriter
	body []byte
}

func (w *bufferedWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *bufferedWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.body = append(w.body, b...)
	return len(b), nil
}

// flush writes the buffered status and body for real.
func (w *bufferedWriter) flush() {
	code := w.status
	if code == 0 {
		code = http.StatusOK
	}
	w.ResponseWriter.WriteHeader(code)
	w.ResponseWriter.Write(w.body)
}
