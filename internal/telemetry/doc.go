// Package telemetry is the dependency-free observability core of the
// serving plane: counters, gauges, fixed-bucket latency histograms, and
// request traces, all designed so the hot path pays roughly one atomic add
// per event and zero allocations.
//
// # Metrics
//
// A Registry owns named metrics. Names follow Prometheus conventions
// (ftbfs_http_requests_total); label sets are rendered once at registration
// time (`route="/dist",outcome="ok"`), so recording never formats strings.
// Handlers resolve their metric pointers at construction and hold them
// directly — the per-event cost is an atomic.Add, never a map lookup.
//
// Histogram buckets are log-spaced nanoseconds: values below 16 ns get
// exact buckets, everything above lands in one of four sub-buckets per
// power of two (≤ 25 % relative error), 256 buckets total covering the
// full int64 range. Quantiles (p50/p90/p99/p999) are read from bucket
// counts, so they are exactly mergeable: merging two snapshots and taking
// a quantile equals taking the quantile of the concatenated samples, which
// is what makes the router's /metrics/fleet aggregation sound.
//
// Snapshot captures a registry's state as plain maps, marshals to JSON for
// shard→router scraping, merges associatively, and renders to Prometheus
// text exposition format with WriteProm.
//
// # Tracing
//
// A Trace is a request-scoped span log identified by a 64-bit ID. It
// travels between processes as the X-Ftbfs-Trace header on HTTP and as the
// trace field of every wire frame (protocol v3); a zero ID means untraced
// and costs the hot path a single branch. Each layer appends completed
// spans (router attempt, server route, store resolve); shards return their
// spans to the router in the X-Ftbfs-Spans response header so one
// /debug/traces entry shows the whole request tree. Completed traces land
// in a bounded TraceRing of recent slow requests.
package telemetry
