package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64. The zero value is ready to use; all methods
// are safe for concurrent use and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Outcome classifies a finished request for outcome-labeled histograms.
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeError
	OutcomeShed
	OutcomeTimeout
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"ok", "error", "shed", "timeout"}

// String returns the label value used in metric names.
func (o Outcome) String() string { return outcomeNames[o] }

// OutcomeOf maps an HTTP status code to an outcome: 503 is a shed, 504 a
// timeout, any other 4xx/5xx an error, everything else ok.
func OutcomeOf(status int) Outcome {
	switch {
	case status == 503:
		return OutcomeShed
	case status == 504:
		return OutcomeTimeout
	case status >= 400:
		return OutcomeError
	default:
		return OutcomeOK
	}
}

// OutcomeHist is a latency histogram split by request outcome. Each
// outcome is its own registered series (label outcome="ok" etc.), resolved
// once at registration so Observe is array-indexed and allocation-free.
type OutcomeHist struct {
	h [numOutcomes]*Histogram
}

// Observe records one finished request.
func (o *OutcomeHist) Observe(d time.Duration, out Outcome) {
	if o == nil {
		return
	}
	o.h[out].Observe(d)
}

// Hist returns the histogram of one outcome (for tests and summaries).
func (o *OutcomeHist) Hist(out Outcome) *Histogram { return o.h[out] }

// Registry owns a set of named metrics. Registration takes a lock;
// recording through the returned pointers never does. Registering the same
// (name, labels) twice returns the same metric, so layers can share
// series.
//
// The labels argument is a pre-rendered Prometheus label body such as
// `route="/dist",outcome="ok"` — empty for none. Callers render it once at
// construction time; the hot path never formats labels.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	counterFns map[string]func() uint64
	gaugeFns   map[string]func() int64
	help       map[string]string // family → help text
	types      map[string]string // family → counter|gauge|histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		counterFns: make(map[string]func() uint64),
		gaugeFns:   make(map[string]func() int64),
		help:       make(map[string]string),
		types:      make(map[string]string),
	}
}

// Key renders the series key for a family name and label body.
func Key(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func (r *Registry) family(name, help, typ string) {
	if _, ok := r.types[name]; !ok {
		r.types[name] = typ
		r.help[name] = help
	}
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, "counter")
	k := Key(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, "gauge")
	k := Key(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. Name the family with a _seconds suffix: buckets are recorded in
// nanoseconds internally and exposed in seconds.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, "histogram")
	k := Key(name, labels)
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// OutcomeHist registers four outcome-labeled histogram series under one
// family and returns them bundled for array-indexed recording. A non-empty
// labels body is prepended to the outcome label.
func (r *Registry) OutcomeHist(name, labels, help string) *OutcomeHist {
	o := &OutcomeHist{}
	for i := Outcome(0); i < numOutcomes; i++ {
		lb := `outcome="` + outcomeNames[i] + `"`
		if labels != "" {
			lb = labels + "," + lb
		}
		o.h[i] = r.Histogram(name, lb, help)
	}
	return o
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time — for adopting counters that live elsewhere (process-wide plan
// stats, breaker internals) without double bookkeeping.
func (r *Registry) CounterFunc(name, labels, help string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, "counter")
	r.counterFns[Key(name, labels)] = fn
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, "gauge")
	r.gaugeFns[Key(name, labels)] = fn
}

// Snapshot is a point-in-time copy of a registry's series, keyed by the
// rendered series name (family plus label body). It marshals to JSON for
// shard→router scraping and merges associatively with Merge.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
	Help     map[string]string       `json:"help,omitempty"`
	Types    map[string]string       `json:"types,omitempty"`
}

// Snapshot captures every registered series, evaluating func-backed ones.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters: make(map[string]uint64, len(r.counters)+len(r.counterFns)),
		Gauges:   make(map[string]int64, len(r.gauges)+len(r.gaugeFns)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
		Help:     make(map[string]string, len(r.help)),
		Types:    make(map[string]string, len(r.types)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, fn := range r.counterFns {
		s.Counters[k] = fn()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range r.gaugeFns {
		s.Gauges[k] = fn()
	}
	for k, h := range r.hists {
		s.Hists[k] = h.Snapshot()
	}
	for k, v := range r.help {
		s.Help[k] = v
	}
	for k, v := range r.types {
		s.Types[k] = v
	}
	return s
}

// Merge combines snapshots into a new one: counters and histogram buckets
// add, gauges sum (a fleet gauge is the fleet total). Merging is
// associative and commutative, so fleet aggregation order never matters.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
		Help:     make(map[string]string),
		Types:    make(map[string]string),
	}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		for k, v := range s.Hists {
			h := out.Hists[k]
			h.Merge(v)
			out.Hists[k] = h
		}
		for k, v := range s.Help {
			if _, ok := out.Help[k]; !ok {
				out.Help[k] = v
			}
		}
		for k, v := range s.Types {
			if _, ok := out.Types[k]; !ok {
				out.Types[k] = v
			}
		}
	}
	return out
}

// sortedKeys returns the keys of m sorted, for stable exposition output.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
