package telemetry

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Fatalf("FormatTraceID(%x) = %q, want 16 hex digits", id, s)
		}
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Fatalf("ParseTraceID(%q) = %x, %v; want %x", s, got, ok, id)
		}
	}
	if _, ok := ParseTraceID(""); ok {
		t.Error("empty header must not parse")
	}
	if _, ok := ParseTraceID("0000000000000000"); ok {
		t.Error("zero ID means untraced and must not parse")
	}
	if _, ok := ParseTraceID("zzzz"); ok {
		t.Error("garbage must not parse")
	}
	if NewTrace(0).ID() == 0 {
		t.Error("NewTrace(0) must generate a non-zero ID")
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("background context must carry no trace")
	}
	tr := NewTrace(42)
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace lost in context")
	}
}

func TestTraceSpansJSON(t *testing.T) {
	tr := NewTrace(7)
	tr.Add("server /dist", tr.Start())
	tr.AddSpan(Span{Name: "store.resolve", StartUs: 1, DurUs: 2})
	var spans []Span
	if err := json.Unmarshal([]byte(tr.SpansJSON()), &spans); err != nil {
		t.Fatalf("SpansJSON not valid JSON: %v", err)
	}
	if len(spans) != 2 || spans[0].Name != "server /dist" || spans[1].DurUs != 2 {
		t.Fatalf("spans round-trip wrong: %+v", spans)
	}
}

func TestTraceRingBoundsAndOrder(t *testing.T) {
	r := NewTraceRing(3, 0)
	for i := 1; i <= 5; i++ {
		r.Record(NewTrace(uint64(i)), "/dist", time.Duration(i)*time.Millisecond)
	}
	recs := r.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recs))
	}
	// Newest first: traces 5, 4, 3.
	if recs[0].ID != FormatTraceID(5) || recs[2].ID != FormatTraceID(3) {
		t.Fatalf("ring order wrong: %v", []string{recs[0].ID, recs[1].ID, recs[2].ID})
	}
}

func TestTraceRingSlowFilter(t *testing.T) {
	r := NewTraceRing(8, 10*time.Millisecond)
	r.Record(NewTrace(1), "/dist", time.Millisecond)    // fast: dropped
	r.Record(NewTrace(2), "/dist", 50*time.Millisecond) // slow: kept
	if got := r.Snapshot(); len(got) != 1 || got[0].ID != FormatTraceID(2) {
		t.Fatalf("slow filter wrong: %+v", got)
	}
}

func TestTraceRingServeHTTP(t *testing.T) {
	r := NewTraceRing(4, 0)
	tr := NewTrace(9)
	tr.Add("router /dist", tr.Start())
	r.Record(tr, "/dist", 3*time.Millisecond)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var out []TraceRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	if len(out) != 1 || out[0].ID != FormatTraceID(9) || len(out[0].Spans) != 1 {
		t.Fatalf("trace record wrong: %+v", out)
	}
}
