package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Exposition boundaries: cumulative bucket counts are reported at powers
// of two from 2^promLoExp ns (~1 µs) through 2^promHiExp ns (~17 s), plus
// +Inf. The internal 256-bucket layout nests exactly inside power-of-two
// boundaries, so the reported cumulative counts are exact, not resampled.
const (
	promLoExp = 10
	promHiExp = 34
)

// promLe returns the exposition boundary 2^k ns in seconds, rendered the
// way Prometheus text format expects.
func promLe(k int) string {
	return strconv.FormatFloat(float64(int64(1)<<uint(k))/1e9, 'g', -1, 64)
}

// cumBelowPow2 returns how many observations fall strictly below 2^k ns.
func cumBelowPow2(buckets []uint64, k int) uint64 {
	limit := 16 + (k-4)*4 // first bucket index holding values ≥ 2^k
	if limit > len(buckets) {
		limit = len(buckets)
	}
	var n uint64
	for _, c := range buckets[:limit] {
		n += c
	}
	return n
}

// splitKey splits a series key into family name and label body.
func splitKey(k string) (family, labels string) {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i], strings.TrimSuffix(k[i+1:], "}")
	}
	return k, ""
}

// joinLabels renders a label body plus one extra label into braces.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// WriteProm renders the snapshot in Prometheus text exposition format
// (version 0.0.4): families sorted by name with HELP/TYPE headers,
// histograms as cumulative _bucket/_sum/_count series with le in seconds.
func (s *Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)

	// Group series keys by family so HELP/TYPE appear exactly once.
	families := make(map[string][]string)
	kind := func(fam string) string {
		if t, ok := s.Types[fam]; ok {
			return t
		}
		return ""
	}
	for _, k := range sortedKeys(s.Counters) {
		fam, _ := splitKey(k)
		families[fam] = append(families[fam], k)
	}
	for _, k := range sortedKeys(s.Gauges) {
		fam, _ := splitKey(k)
		families[fam] = append(families[fam], k)
	}
	for _, k := range sortedKeys(s.Hists) {
		fam, _ := splitKey(k)
		families[fam] = append(families[fam], k)
	}

	for _, fam := range sortedKeys(families) {
		if h := s.Help[fam]; h != "" {
			bw.WriteString("# HELP " + fam + " " + h + "\n")
		}
		famType := kind(fam)
		if famType == "" {
			famType = "untyped"
		}
		bw.WriteString("# TYPE " + fam + " " + famType + "\n")
		for _, k := range families[fam] {
			_, labels := splitKey(k)
			if v, ok := s.Counters[k]; ok {
				bw.WriteString(fam + joinLabels(labels, "") + " " + strconv.FormatUint(v, 10) + "\n")
				continue
			}
			if v, ok := s.Gauges[k]; ok {
				bw.WriteString(fam + joinLabels(labels, "") + " " + strconv.FormatInt(v, 10) + "\n")
				continue
			}
			if hs, ok := s.Hists[k]; ok {
				total := hs.Count()
				for kexp := promLoExp; kexp <= promHiExp; kexp++ {
					le := `le="` + promLe(kexp) + `"`
					n := cumBelowPow2(hs.Buckets, kexp)
					bw.WriteString(fam + "_bucket" + joinLabels(labels, le) + " " + strconv.FormatUint(n, 10) + "\n")
				}
				bw.WriteString(fam + "_bucket" + joinLabels(labels, `le="+Inf"`) + " " + strconv.FormatUint(total, 10) + "\n")
				bw.WriteString(fam + "_sum" + joinLabels(labels, "") + " " + strconv.FormatFloat(float64(hs.Sum)/1e9, 'g', -1, 64) + "\n")
				bw.WriteString(fam + "_count" + joinLabels(labels, "") + " " + strconv.FormatUint(total, 10) + "\n")
			}
		}
	}
	return bw.Flush()
}
