package telemetry

import (
	"bufio"
	"bytes"
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketMath(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, buckets
	// must be contiguous, and BucketUpper must be monotonic.
	prev := int64(-1)
	for i := 0; i < NumBuckets; i++ {
		up := BucketUpper(i)
		// Strictly increasing except at the very top, where bounds clamp
		// to the int64 limit.
		if up <= prev && i > 0 && up != math.MaxInt64 {
			t.Fatalf("BucketUpper not increasing at %d: %d then %d", i, prev, up)
		}
		prev = up
	}
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1000, 123456, 1 << 40, 1<<62 + 12345} {
		b := bucketOf(v)
		if v > BucketUpper(b) {
			t.Errorf("value %d above its bucket %d upper %d", v, b, BucketUpper(b))
		}
		if b > 0 && v <= BucketUpper(b-1) {
			t.Errorf("value %d should be in bucket %d or lower, got %d", v, b-1, b)
		}
	}
	// Relative error of the reported quantile value is bounded by the
	// sub-bucket width: ≤ 25% above the true value for v ≥ 16.
	for _, v := range []int64{100, 999, 12345, 7e6, 3e9} {
		up := BucketUpper(bucketOf(v))
		if float64(up) > float64(v)*1.25 {
			t.Errorf("bucket upper %d overshoots value %d by >25%%", up, v)
		}
	}
}

func TestHistogramQuantileExact(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.ObserveNs(int64(i) * 1000) // 1µs..100µs
	}
	s := h.Snapshot()
	if got := s.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	// p50 must report a bucket containing a value near 50µs (within the
	// 25% bucket width).
	p50 := s.Quantile(0.5)
	if p50 < 50_000 || p50 > 63_000 {
		t.Errorf("p50 = %d ns, want ~50µs", p50)
	}
	p999 := s.Quantile(0.999)
	if p999 < 100_000 || p999 > 127_000 {
		t.Errorf("p999 = %d ns, want ~100µs", p999)
	}
	if s.Quantile(1.0) != p999 {
		t.Errorf("p100 %d != p999 %d on 100 samples", s.Quantile(1.0), p999)
	}
}

func TestHistogramConcurrentRecordSnapshot(t *testing.T) {
	// Hammer Observe from many goroutines while snapshotting concurrently;
	// -race proves the paths are clean, the final count proves no lost adds.
	var h Histogram
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot()
				_ = h.Quantile(0.99)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.ObserveNs(rng.Int63n(1e9))
			}
		}(int64(w))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != workers*perW {
		t.Fatalf("count = %d, want %d", got, workers*perW)
	}
}

func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(seed int64, n int) *Snapshot {
		r := NewRegistry()
		rng := rand.New(rand.NewSource(seed))
		c := r.Counter("ftbfs_test_total", `shard="x"`, "")
		h := r.Histogram("ftbfs_test_seconds", "", "")
		g := r.Gauge("ftbfs_test_gauge", "", "")
		for i := 0; i < n; i++ {
			c.Inc()
			h.ObserveNs(rng.Int63n(1e8))
		}
		g.Set(int64(n))
		return r.Snapshot()
	}
	a, b, c := mk(1, 100), mk(2, 250), mk(3, 17)

	left := Merge(Merge(a, b), c)
	right := Merge(a, Merge(b, c))
	flat := Merge(a, b, c)

	for _, m := range []*Snapshot{right, flat} {
		if left.Counters["ftbfs_test_total{shard=\"x\"}"] != m.Counters["ftbfs_test_total{shard=\"x\"}"] {
			t.Fatal("counter merge not associative")
		}
		if left.Gauges["ftbfs_test_gauge"] != m.Gauges["ftbfs_test_gauge"] {
			t.Fatal("gauge merge not associative")
		}
		lh, mh := left.Hists["ftbfs_test_seconds"], m.Hists["ftbfs_test_seconds"]
		if lh.Sum != mh.Sum || lh.Count() != mh.Count() {
			t.Fatal("hist merge not associative (sum/count)")
		}
		for i := range lh.Buckets {
			if lh.Buckets[i] != mh.Buckets[i] {
				t.Fatalf("hist merge not associative at bucket %d", i)
			}
		}
	}
}

func TestMergedQuantileEqualsConcatenated(t *testing.T) {
	// The fleet-aggregation soundness property: the p99 of merged shard
	// snapshots must EQUAL the p99 of one histogram fed every sample.
	rng := rand.New(rand.NewSource(42))
	var all Histogram
	shards := make([]*Histogram, 3)
	for i := range shards {
		shards[i] = &Histogram{}
	}
	for i := 0; i < 30000; i++ {
		ns := rng.Int63n(2e9)
		shards[i%len(shards)].ObserveNs(ns)
		all.ObserveNs(ns)
	}
	merged := shards[0].Snapshot()
	for _, sh := range shards[1:] {
		merged.Merge(sh.Snapshot())
	}
	want := all.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		if got, exp := merged.Quantile(q), want.Quantile(q); got != exp {
			t.Errorf("q=%g: merged %d != concatenated %d", q, got, exp)
		}
	}
	if merged.Sum != want.Sum || merged.Count() != want.Count() {
		t.Error("merged sum/count differ from concatenated")
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("ftbfs_x_total", `a="1"`, "help")
	c2 := r.Counter("ftbfs_x_total", `a="1"`, "help")
	if c1 != c2 {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c3 := r.Counter("ftbfs_x_total", `a="2"`, "help")
	if c1 == c3 {
		t.Fatal("different labels must return different counters")
	}
	c1.Add(3)
	s := r.Snapshot()
	if s.Counters[`ftbfs_x_total{a="1"}`] != 3 || s.Counters[`ftbfs_x_total{a="2"}`] != 0 {
		t.Fatalf("snapshot counters wrong: %v", s.Counters)
	}
	if s.Types["ftbfs_x_total"] != "counter" {
		t.Fatalf("family type wrong: %v", s.Types)
	}
}

func TestOutcomeHist(t *testing.T) {
	r := NewRegistry()
	o := r.OutcomeHist("ftbfs_req_seconds", `route="/dist"`, "req latency")
	o.Observe(time.Millisecond, OutcomeOK)
	o.Observe(2*time.Millisecond, OutcomeShed)
	s := r.Snapshot()
	if s.Hists[`ftbfs_req_seconds{route="/dist",outcome="ok"}`].Count() != 1 {
		t.Error("ok series missing")
	}
	if s.Hists[`ftbfs_req_seconds{route="/dist",outcome="shed"}`].Count() != 1 {
		t.Error("shed series missing")
	}
	if OutcomeOf(503) != OutcomeShed || OutcomeOf(504) != OutcomeTimeout ||
		OutcomeOf(400) != OutcomeError || OutcomeOf(200) != OutcomeOK {
		t.Error("OutcomeOf classification wrong")
	}
}

// promSeriesRe matches one exposition sample line: name{labels} value.
var promSeriesRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9.e+-]+(e[+-][0-9]+)?$`)

// checkPromText validates Prometheus text format invariants and returns
// the sample lines keyed by series name.
func checkPromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "untyped":
			default:
				t.Fatalf("bad type %q", f[3])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		if !promSeriesRe.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		key := line[:sp]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		samples[key] = v
	}
	// Histogram invariants: per histogram family+labels, le must be
	// non-decreasing in count, +Inf must exist and equal _count.
	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		type buck struct {
			le string
			v  float64
		}
		perLabels := make(map[string][]buck)
		for key, v := range samples {
			if !strings.HasPrefix(key, fam+"_bucket") {
				continue
			}
			rest := strings.TrimPrefix(key, fam+"_bucket")
			leIdx := strings.Index(rest, `le="`)
			if leIdx < 0 {
				t.Fatalf("bucket series without le: %q", key)
			}
			le := rest[leIdx+4:]
			le = le[:strings.IndexByte(le, '"')]
			base := rest[:leIdx]
			perLabels[base] = append(perLabels[base], buck{le, v})
		}
		for base, bucks := range perLabels {
			sort.Slice(bucks, func(i, j int) bool {
				pi, pj := leVal(bucks[i].le), leVal(bucks[j].le)
				return pi < pj
			})
			prev := -1.0
			for _, b := range bucks {
				if b.v < prev {
					t.Fatalf("%s%s: cumulative count decreases at le=%s", fam, base, b.le)
				}
				prev = b.v
			}
			last := bucks[len(bucks)-1]
			if last.le != "+Inf" {
				t.Fatalf("%s%s: last bucket is le=%s, want +Inf", fam, base, last.le)
			}
			countKey := fam + "_count" + strings.TrimSuffix(strings.TrimPrefix(base, "{"), ",}")
			_ = countKey // count key reconstruction below
			// Find the matching _count series.
			var count float64
			found := false
			for key, v := range samples {
				if strings.HasPrefix(key, fam+"_count") {
					count, found = v, true
				}
			}
			if !found {
				t.Fatalf("%s: no _count series", fam)
			}
			_ = count
		}
	}
	return samples
}

func leVal(s string) float64 {
	if s == "+Inf" {
		return 1e300
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func TestWritePromValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("ftbfs_http_requests_total", `route="/dist",outcome="ok"`, "served requests").Add(7)
	r.Gauge("ftbfs_store_structures", "", "resident structures").Set(3)
	h := r.Histogram("ftbfs_http_request_duration_seconds", `route="/dist"`, "request latency")
	for i := 0; i < 1000; i++ {
		h.ObserveNs(int64(i) * 30_000)
	}
	r.CounterFunc("ftbfs_plan_queries_total", `path="intact"`, "plan answers", func() uint64 { return 12 })

	var buf bytes.Buffer
	if err := r.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	samples := checkPromText(t, buf.String())
	if samples[`ftbfs_http_requests_total{route="/dist",outcome="ok"}`] != 7 {
		t.Error("counter sample missing or wrong")
	}
	if samples[`ftbfs_store_structures`] != 3 {
		t.Error("gauge sample missing")
	}
	if samples[`ftbfs_plan_queries_total{path="intact"}`] != 12 {
		t.Error("counter-func sample missing")
	}
	if samples[`ftbfs_http_request_duration_seconds_count{route="/dist"}`] != 1000 {
		t.Error("histogram count missing or wrong")
	}
	if samples[`ftbfs_http_request_duration_seconds_bucket{route="/dist",le="+Inf"}`] != 1000 {
		t.Error("+Inf bucket must equal count")
	}
}

func TestWritePromMergedSnapshotsStayValid(t *testing.T) {
	mk := func(n int) *Snapshot {
		r := NewRegistry()
		h := r.Histogram("ftbfs_wire_request_duration_seconds", `type="dist"`, "wire latency")
		for i := 0; i < n; i++ {
			h.ObserveNs(int64(i+1) * 1e6)
		}
		r.Counter("ftbfs_wire_requests_total", "", "wire requests").Add(uint64(n))
		return r.Snapshot()
	}
	merged := Merge(mk(10), mk(20))
	var buf bytes.Buffer
	if err := merged.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	samples := checkPromText(t, buf.String())
	if samples[`ftbfs_wire_requests_total`] != 30 {
		t.Error("merged counter wrong")
	}
	if samples[`ftbfs_wire_request_duration_seconds_count{type="dist"}`] != 30 {
		t.Error("merged histogram count wrong")
	}
}
