package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Values 0–15 ns
// get exact buckets; above that each power of two splits into four
// log-linear sub-buckets (≤ 25 % relative error), topping out at bucket
// 255 which absorbs everything up to the int64 limit.
const NumBuckets = 256

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	u := uint64(ns)
	if u < 16 {
		return int(u)
	}
	exp := bits.Len64(u) - 1           // 4..63
	frac := (u >> (uint(exp) - 2)) & 3 // top two bits below the leading one
	return 16 + (exp-4)*4 + int(frac)
}

// BucketUpper returns the inclusive upper bound (in ns) of bucket i — the
// value quantile extraction reports for samples landing in the bucket.
func BucketUpper(i int) int64 {
	if i < 16 {
		return int64(i)
	}
	exp := uint(4 + (i-16)/4)
	frac := uint64((i - 16) % 4)
	lower := uint64(1)<<exp + frac<<(exp-2)
	upper := lower + uint64(1)<<(exp-2) - 1
	if upper > math.MaxInt64 {
		upper = math.MaxInt64
	}
	return int64(upper)
}

// Histogram is a fixed-bucket log-spaced latency histogram. The zero value
// is ready to use; Observe is two atomic adds and never allocates. All
// methods are safe for concurrent use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64 // total observed ns
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(uint64(ns))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Quantile reads the q-quantile (0 < q ≤ 1) in nanoseconds directly from
// the live buckets without allocating; see HistSnapshot.Quantile for the
// semantics. Useful on paths (load-shed Retry-After) that must not copy
// the whole histogram per call.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [NumBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileOf(counts[:], total, q)
}

// Snapshot copies the histogram state. The copy is not atomic with respect
// to concurrent Observe calls — each bucket is read once — which is fine
// for monotonically growing counts.
func (h *Histogram) Snapshot() HistSnapshot {
	last := -1
	var counts [NumBuckets]uint64
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			counts[i] = c
			last = i
		}
	}
	return HistSnapshot{
		Buckets: append([]uint64(nil), counts[:last+1]...),
		Sum:     h.sum.Load(),
	}
}

// HistSnapshot is a point-in-time histogram copy. Buckets holds the first
// N bucket counts (trailing zero buckets are trimmed for compact JSON);
// Sum is the total of observed nanoseconds.
type HistSnapshot struct {
	Buckets []uint64 `json:"b,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
}

// Count returns the number of observations in the snapshot.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Buckets {
		n += c
	}
	return n
}

// Merge adds o's buckets into s. Because quantiles are functions of bucket
// counts alone, Quantile(merge(a, b)) equals the quantile of the
// concatenated samples; Merge is associative and commutative.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(o.Buckets) > len(s.Buckets) {
		grown := make([]uint64, len(o.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
	s.Sum += o.Sum
}

// Quantile returns the q-quantile (0 < q ≤ 1) in nanoseconds: the upper
// bound of the bucket holding the ceil(q·count)-th smallest observation.
// Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	return quantileOf(s.Buckets, s.Count(), q)
}

// Mean returns the mean observation in nanoseconds, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

func quantileOf(counts []uint64, total uint64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}
