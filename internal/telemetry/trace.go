package telemetry

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

const (
	// TraceHeader carries the hex trace ID on HTTP requests; the wire
	// protocol carries the same ID in every frame's trace field.
	TraceHeader = "X-Ftbfs-Trace"
	// SpanHeader is set on HTTP responses of traced requests: a JSON array
	// of the spans the serving side recorded, so the caller (the router)
	// can fold shard-side spans into its own trace record.
	SpanHeader = "X-Ftbfs-Spans"

	// maxSpans bounds the span log of a single trace; a runaway layer
	// cannot grow a trace without bound.
	maxSpans = 64
)

// Span is one completed, named unit of work inside a trace. Offsets and
// durations are microseconds relative to the owning trace's start, which
// keeps records compact and clock-skew between layers irrelevant for
// reading a single layer's spans.
type Span struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// Trace is a request-scoped span log. It is safe for concurrent use; a
// request that fans out (hedges, scatter-gather) appends from several
// goroutines.
type Trace struct {
	id    uint64
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace returns a trace with the given ID, generating a random non-zero
// ID when id is 0.
func NewTrace(id uint64) *Trace {
	for id == 0 {
		id = rand.Uint64()
	}
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's 64-bit ID (never 0).
func (t *Trace) ID() uint64 { return t.id }

// IDString renders the ID the way TraceHeader carries it.
func (t *Trace) IDString() string { return FormatTraceID(t.id) }

// Start returns the local time the trace was created.
func (t *Trace) Start() time.Time { return t.start }

// Add records a span that started at start and ends now.
func (t *Trace) Add(name string, start time.Time) {
	t.AddSpan(Span{
		Name:    name,
		StartUs: start.Sub(t.start).Microseconds(),
		DurUs:   time.Since(start).Microseconds(),
	})
}

// AddSpan appends a completed span; beyond maxSpans it is dropped.
func (t *Trace) AddSpan(sp Span) {
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SpansJSON renders the recorded spans as a single-line JSON array,
// suitable for the SpanHeader response header.
func (t *Trace) SpansJSON() string {
	b, err := json.Marshal(t.Spans())
	if err != nil {
		return "[]"
	}
	return string(b)
}

// FormatTraceID renders a trace ID as 16 lowercase hex digits.
func FormatTraceID(id uint64) string {
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses a hex trace ID; ok is false for malformed or zero
// IDs (zero means untraced everywhere in the plane).
func ParseTraceID(s string) (uint64, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

type traceCtxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the request is
// untraced — the common case, costing one context lookup and no
// allocation.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// TraceRecord is one completed trace as stored in a TraceRing and served
// at /debug/traces.
type TraceRecord struct {
	ID    string    `json:"id"`
	Time  time.Time `json:"time"`
	Route string    `json:"route"`
	DurUs int64     `json:"dur_us"`
	Spans []Span    `json:"spans"`
}

// TraceRing is a bounded ring of recent slow traces. Traces faster than
// the slow threshold are dropped; the ring keeps the most recent keepers
// and evicts the oldest. Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	slow time.Duration
	buf  []TraceRecord
	next int
	n    int
}

// NewTraceRing returns a ring holding up to size traces of total duration
// ≥ slow. A slow threshold of 0 keeps every recorded trace; size ≤ 0
// defaults to 64.
func NewTraceRing(size int, slow time.Duration) *TraceRing {
	if size <= 0 {
		size = 64
	}
	return &TraceRing{slow: slow, buf: make([]TraceRecord, size)}
}

// Record files a completed trace that took total. Nil traces and traces
// under the slow threshold are ignored.
func (r *TraceRing) Record(t *Trace, route string, total time.Duration) {
	if r == nil || t == nil || total < r.slow {
		return
	}
	rec := TraceRecord{
		ID:    t.IDString(),
		Time:  t.start,
		Route: route,
		DurUs: total.Microseconds(),
		Spans: t.Spans(),
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// ServeHTTP serves the ring as JSON — the /debug/traces endpoint.
func (r *TraceRing) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.Snapshot())
}
