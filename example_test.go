package ftbfs_test

import (
	"fmt"

	"ftbfs"
)

// Build a structure over a ring with one chord and inspect the split.
func ExampleBuild() {
	g := ftbfs.NewGraph(6)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, (i+1)%6)
	}
	g.MustAddEdge(0, 3)

	st, err := ftbfs.Build(g, 0, 0.25)
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", st.Size())
	fmt.Println("reinforced:", st.ReinforcedCount())
	fmt.Println(st.Verify() == nil)
	// Output:
	// edges: 7
	// reinforced: 0
	// true
}

// Simulate a failure and compare against the damaged network.
func ExampleStructure_Oracle() {
	g := ftbfs.NewGraph(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)

	st, _ := ftbfs.Build(g, 0, 1)
	o := st.Oracle()
	inH, _ := o.DistAvoiding(1, 0, 1) // fail edge {0,1}, ask for vertex 1
	inG, _ := o.BaselineDistAvoiding(1, 0, 1)
	fmt.Println(inH, inG)
	// Output:
	// 3 3
}

// Pick ε from per-edge prices.
func ExamplePredictOptimalEpsilon() {
	fmt.Printf("%.2f\n", ftbfs.PredictOptimalEpsilon(10000, 1, 100))
	// Output:
	// 0.25
}
