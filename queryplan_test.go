package ftbfs_test

import (
	"math/rand"
	"sync"
	"testing"

	"ftbfs"
)

// buildRandom returns a random connected graph plus every edge it inserted,
// so differential tests can fail each edge of G — including edges the
// structure never bought.
func buildRandom(n, extra int, seed int64) (*ftbfs.Graph, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	g := ftbfs.NewGraph(n)
	var edges [][2]int
	add := func(u, v int) {
		g.MustAddEdge(u, v)
		edges = append(edges, [2]int{u, v})
	}
	for i := 1; i < n; i++ {
		add(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			add(u, v)
		}
	}
	return g, edges
}

// TestQueryPlanMatchesReference is the property-style differential test of
// the serving fast path: across random graphs, ε values, and EVERY failable
// edge of the base graph (tree edges, non-tree structure edges, edges
// outside H, and disconnecting bridges), the plan-backed DistAvoiding must
// return exactly what the reference full-BFS DistAvoidingRef returns for
// every target, Unreachable included.
func TestQueryPlanMatchesReference(t *testing.T) {
	cases := []struct {
		n, extra int
		seed     int64
		eps      float64
	}{
		{40, 0, 1, 0.25}, // a bare tree: every failure disconnects its subtree
		{60, 8, 2, 0},    // a few chords; mostly bridges
		{60, 60, 3, 0.25},
		{60, 60, 4, 0.5},
		{50, 100, 5, 1}, // dense; baseline algorithm
		{64, 40, 6, 0.3},
	}
	for _, tc := range cases {
		g, edges := buildRandom(tc.n, tc.extra, tc.seed)
		st, err := ftbfs.Build(g, 0, tc.eps)
		if err != nil {
			t.Fatal(err)
		}
		o := st.Oracle()
		for _, e := range edges {
			if st.IsReinforced(e[0], e[1]) {
				if _, err := o.DistAvoiding(0, e[0], e[1]); err == nil {
					t.Fatalf("n=%d eps=%g: failing reinforced edge %v accepted", tc.n, tc.eps, e)
				}
				continue
			}
			for v := 0; v < g.N(); v++ {
				got, err := o.DistAvoiding(v, e[0], e[1])
				if err != nil {
					t.Fatal(err)
				}
				want, err := o.DistAvoidingRef(v, e[0], e[1])
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("n=%d eps=%g seed=%d: DistAvoiding(%d, %d, %d) = %d, reference %d",
						tc.n, tc.eps, tc.seed, v, e[0], e[1], got, want)
				}
			}
		}
	}
}

// TestDistAvoidingManyGroupedMatchesReference drives the grouped batch path
// with shuffled query vectors that repeat failed edges, so the
// repair-once-serve-many reuse is exercised and compared answer-for-answer
// with the reference oracle.
func TestDistAvoidingManyGroupedMatchesReference(t *testing.T) {
	g, edges := buildRandom(80, 100, 9)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	rng := rand.New(rand.NewSource(99))
	var failable [][2]int
	for _, e := range edges {
		if !st.IsReinforced(e[0], e[1]) {
			failable = append(failable, e)
		}
	}
	for round := 0; round < 10; round++ {
		queries := make([]ftbfs.FailureQuery, 48)
		for i := range queries {
			e := failable[rng.Intn(min(8+round, len(failable)))] // heavy duplication
			queries[i] = ftbfs.FailureQuery{V: rng.Intn(g.N()), FailedU: e[0], FailedV: e[1]}
		}
		got, err := o.DistAvoidingMany(queries, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			want, err := o.DistAvoidingRef(q.V, q.FailedU, q.FailedV)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("round %d query %d (%+v): batched %d, reference %d", round, i, q, got[i], want)
			}
		}
	}
}

// TestDistAvoidingManyValidatesUpFront asserts the whole batch is validated
// before any result is published: a bad query anywhere must leave out
// untouched.
func TestDistAvoidingManyValidatesUpFront(t *testing.T) {
	g := ringWithChords(16)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	bad := []ftbfs.FailureQuery{
		{V: 1, FailedU: 0, FailedV: 1},
		{V: 2, FailedU: 1, FailedV: 2},
		{V: 3, FailedU: 0, FailedV: 7}, // not an edge
		{V: 4, FailedU: 2, FailedV: 3},
	}
	const sentinel = -12345
	out := make([]int, len(bad))
	for i := range out {
		out[i] = sentinel
	}
	if _, err := o.DistAvoidingMany(bad, out); err == nil {
		t.Fatal("batch with a non-edge failure accepted")
	}
	for i, d := range out {
		if d != sentinel {
			t.Fatalf("out[%d] = %d was published despite the batch error", i, d)
		}
	}
}

// TestQueryPlanConcurrentMatchesReference hammers the pooled plan path from
// many goroutines (run under -race in CI) against reference answers computed
// serially, covering the lazily built plan, the shared intact vector, and
// per-oracle repair scratches.
func TestQueryPlanConcurrentMatchesReference(t *testing.T) {
	g, edges := buildRandom(90, 120, 17)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	type q struct{ v, fu, fv, want int }
	ref := st.Oracle()
	var qs []q
	for i, e := range edges {
		if st.IsReinforced(e[0], e[1]) {
			continue
		}
		v := (i * 37) % g.N()
		want, err := ref.DistAvoidingRef(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q{v, e[0], e[1], want})
	}
	pool := st.OraclePool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(qs)*4; i += 8 {
				qq := qs[i%len(qs)]
				err := pool.Do(func(o *ftbfs.Oracle) error {
					got, err := o.DistAvoiding(qq.v, qq.fu, qq.fv)
					if err != nil {
						return err
					}
					if got != qq.want {
						t.Errorf("concurrent DistAvoiding(%d,%d,%d) = %d, want %d", qq.v, qq.fu, qq.fv, got, qq.want)
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestQueryPlanClassifiers sanity-checks the exported plan diagnostics: a
// BFS-tree edge must classify as a tree edge with a positive affected
// subtree, everything else as O(1).
func TestQueryPlanClassifiers(t *testing.T) {
	g, edges := buildRandom(50, 60, 21)
	st, err := ftbfs.Build(g, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	plan := st.Plan()
	if plan != st.Plan() {
		t.Fatal("Plan is not cached")
	}
	o := st.Oracle()
	trees, flats := 0, 0
	for _, e := range edges {
		if st.IsReinforced(e[0], e[1]) {
			continue
		}
		isTree := plan.IsTreeEdge(e[0], e[1])
		size := plan.SubtreeSize(e[0], e[1])
		if isTree != (size > 0) {
			t.Fatalf("edge %v: IsTreeEdge=%v but SubtreeSize=%d", e, isTree, size)
		}
		if isTree {
			trees++
			continue
		}
		flats++
		// Non-tree failures must not change any distance at all.
		for v := 0; v < g.N(); v += 7 {
			got, err := o.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != st.Dist(v) {
				t.Fatalf("non-tree failure %v changed dist(%d): %d != %d", e, v, got, st.Dist(v))
			}
		}
	}
	if trees == 0 || flats == 0 {
		t.Fatalf("degenerate classification: %d tree edges, %d non-tree", trees, flats)
	}
}
