package ftbfs

import (
	"fmt"

	"ftbfs/internal/core"
	"ftbfs/internal/graph"
)

// MutationOp selects the kind of one edge mutation.
type MutationOp int

const (
	// MutInsert adds an edge that must not currently exist.
	MutInsert MutationOp = iota
	// MutDelete removes an edge that must currently exist.
	MutDelete
)

// String implements fmt.Stringer.
func (op MutationOp) String() string {
	if op == MutDelete {
		return "delete"
	}
	return "insert"
}

// Mutation is one edge insert or delete applied by Graph.Mutate.
type Mutation struct {
	Op   MutationOp
	U, V int
}

// GraphDelta describes how one Mutate call changed a graph: which edges of
// the old generation survived (and under which new EdgeIDs) and whether the
// batch inserted anything. It is the input DeltaRebuild needs to decide
// whether an existing structure can be carried to the new generation without
// rebuilding.
type GraphDelta struct {
	remap     []graph.EdgeID // old EdgeID → new EdgeID, NoEdge for deleted
	survivors int            // count of non-NoEdge entries in remap
	newM      int
}

// Inserted reports whether the batch's net effect includes at least one new
// edge (an insert that was deleted again in the same batch does not count).
func (d *GraphDelta) Inserted() bool { return d.newM > d.survivors }

// Generation returns how many mutation batches separate g from its original
// build. A graph constructed with NewGraph or ReadGraph is generation 0
// unless the file it was read from recorded a later generation.
func (g *Graph) Generation() uint64 { return g.g.Generation() }

// Lineage returns the identity shared by every generation of this graph: the
// fingerprint of its generation-0 ancestor. Registries and the cluster ring
// key graphs by lineage, so mutating a graph never moves its structures to
// different shards; Fingerprint, by contrast, changes with every generation.
func (g *Graph) Lineage() uint64 { return g.g.Lineage() }

// Mutate applies a batch of edge mutations and returns the next generation
// of the graph plus the delta connecting the two. The receiver is frozen (if
// it was not already) and left untouched — structures built from it keep
// serving while the new generation is prepared; Generation() of the result
// is one higher, Lineage() is unchanged, and Fingerprint() is derived
// incrementally from the batch. An invalid mutation (out-of-range endpoint,
// self-loop, inserting a present edge, deleting an absent one) fails the
// whole batch and no new generation exists.
func (g *Graph) Mutate(muts []Mutation) (*Graph, *GraphDelta, error) {
	g.g.Freeze()
	ims := make([]graph.Mutation, len(muts))
	for i, m := range muts {
		if m.Op != MutInsert && m.Op != MutDelete {
			return nil, nil, fmt.Errorf("ftbfs: mutation %d: unknown op %d", i, m.Op)
		}
		ims[i] = graph.Mutation{Op: graph.MutationOp(m.Op), U: m.U, V: m.V}
	}
	next, remap, err := g.g.Apply(ims)
	if err != nil {
		return nil, nil, err
	}
	d := &GraphDelta{remap: remap, newM: next.M()}
	for _, id := range remap {
		if id != graph.NoEdge {
			d.survivors++
		}
	}
	return &Graph{g: next}, d, nil
}

// DeltaRebuild carries an edge structure built on the previous generation
// over to the mutated graph g without rebuilding, when the mutation provably
// cannot have changed anything the structure answers with. ok is false — and
// the caller must run a full Build against g — whenever the fast path does
// not apply.
//
// The fast path applies exactly when the batch only DELETED edges, none of
// which belong to E(H). Then H ⊆ G_new ⊆ G_old, so for every vertex v and
// every failing edge e: dist_H(s,v) = dist_G_old(s,v) ≤ dist_G_new(s,v) ≤
// dist_H(s,v) — the intact distances, the canonical BFS tree T0 (whose edges
// all live in H, hence all survive) and every replacement path of the
// structure are exactly as valid for the new generation as they were for the
// old. All the structure needs is a re-keying of its edge sets onto the new
// generation's EdgeIDs, plus a fresh O(n + |E(H)|) serving plan — no
// decomposition, no replacement-path search, no reinforcement sweep.
//
// Inserts always force a full rebuild (a new edge can shorten replacement
// paths, invalidating the structure's optimality), as does deleting any edge
// of H. Vertex structures have no delta path; mutation always rebuilds them.
func DeltaRebuild(old *Structure, g *Graph, d *GraphDelta) (*Structure, bool) {
	if old == nil || d == nil || d.Inserted() || len(d.remap) != old.st.G.M() {
		return nil, false
	}
	for id, nid := range d.remap {
		if nid == graph.NoEdge && old.st.Edges.Contains(graph.EdgeID(id)) {
			return nil, false
		}
	}
	translate := func(set *graph.EdgeSet) *graph.EdgeSet {
		out := graph.NewEdgeSet(g.M())
		set.ForEach(func(id graph.EdgeID) {
			// Eligibility guaranteed every H edge survived, so the remap of
			// any member is a real id.
			out.Add(d.remap[id])
		})
		return out
	}
	cs := &core.Structure{
		G:          g.g,
		S:          old.st.S,
		Eps:        old.st.Eps,
		Edges:      translate(old.st.Edges),
		Reinforced: translate(old.st.Reinforced),
		TreeEdges:  translate(old.st.TreeEdges),
		Stats:      old.st.Stats, // diagnostics of the original build
	}
	s := &Structure{st: cs}
	// The intact distance vector is per-vertex, not per-edge-id, and the
	// theorem above says it is unchanged — seed it so the carry-over never
	// reruns the intact BFS.
	intact := old.intactDistances()
	s.intactOnce.Do(func() { s.intactDist = intact })
	// The serving plan, by contrast, is keyed by EdgeID (CSR arcs, tree
	// arrays, the edgeChild index), so it must be rebuilt — but Plan() is a
	// CSR extraction plus two linear passes over H, the cheap part of a
	// build. Doing it eagerly keeps the delta path's cost out of the first
	// query it serves.
	s.Plan()
	return s, true
}
