module ftbfs

go 1.24
