package ftbfs_test

// Differential tests of the vertex-failure serving path: the
// VertexQueryPlan fast paths (O(1) off-tree-path reads, subtree-local
// repairs) must equal the full restricted-BFS reference for EVERY failable
// vertex of every corpus graph — disconnecting failures included — and the
// grouped batch paths and pooled oracles must agree with the point path
// under -race. Mirrors the edge-plan tests in queryplan_test.go one model
// up.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ftbfs"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
)

// vertexCorpus returns named root-package graphs with a source each,
// including graphs whose vertex failures disconnect large chunks (stars,
// near-trees) and denser graphs where replacement paths exist.
func vertexCorpus() map[string]struct {
	g      *ftbfs.Graph
	source int
} {
	fromInternal := func(ig *graph.Graph) *ftbfs.Graph {
		g := ftbfs.NewGraph(ig.N())
		for _, e := range ig.EdgesView() {
			g.MustAddEdge(int(e.U), int(e.V))
		}
		return g
	}
	out := map[string]struct {
		g      *ftbfs.Graph
		source int
	}{
		// A star queried from a leaf: failing the hub disconnects everything.
		"star-from-leaf": {fromInternal(gen.Star(14)), 1},
		// Near-tree: plenty of cut vertices, so many failures disconnect.
		"sparse-random": {fromInternal(gen.RandomConnected(70, 80, 3)), 0},
		"denser-random": {fromInternal(gen.RandomConnected(60, 180, 5)), 7},
		"grid":          {fromInternal(gen.Grid(6, 6)), 2},
		"cycle":         {fromInternal(gen.Cycle(18)), 4},
	}
	for seed := int64(11); seed <= 13; seed++ {
		out[fmt.Sprintf("random-%d", seed)] = struct {
			g      *ftbfs.Graph
			source int
		}{fromInternal(gen.RandomConnected(50, 120, seed)), int(seed) % 5}
	}
	return out
}

// TestVertexPlanMatchesReference is the exhaustive differential: for every
// failable vertex w (every vertex but the source) and every target v, the
// plan-backed DistAvoidingVertex equals the full-BFS DistAvoidingVertexRef.
func TestVertexPlanMatchesReference(t *testing.T) {
	for name, tc := range vertexCorpus() {
		st, err := ftbfs.BuildVertex(tc.g, tc.source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := st.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o := st.Oracle()
		n := tc.g.N()
		for w := 0; w < n; w++ {
			if w == tc.source {
				if _, err := o.DistAvoidingVertex(0, w); err == nil {
					t.Fatalf("%s: failing the source accepted", name)
				}
				continue
			}
			for v := 0; v < n; v++ {
				got, err := o.DistAvoidingVertex(v, w)
				if err != nil {
					t.Fatalf("%s: (v=%d, w=%d): %v", name, v, w, err)
				}
				want, err := o.DistAvoidingVertexRef(v, w)
				if err != nil {
					t.Fatalf("%s: ref (v=%d, w=%d): %v", name, v, w, err)
				}
				if got != want {
					t.Fatalf("%s: dist(v=%d | w=%d failed) = %d, reference = %d", name, v, w, got, want)
				}
			}
		}
	}
}

// TestVertexManyGroupsAndValidates checks the batch contracts: Many
// validates up front and never publishes partial results, Each fills
// per-slot errors, and both equal the point path query for query.
func TestVertexManyGroupsAndValidates(t *testing.T) {
	tc := vertexCorpus()["denser-random"]
	st, err := ftbfs.BuildVertex(tc.g, tc.source)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	n := tc.g.N()
	rng := rand.New(rand.NewSource(42))
	var queries []ftbfs.VertexFailureQuery
	for len(queries) < 48 {
		w := rng.Intn(n)
		if w == tc.source {
			continue
		}
		// Deliberately repeat failed vertices so grouping shares repairs.
		for k := 0; k < 3; k++ {
			queries = append(queries, ftbfs.VertexFailureQuery{V: rng.Intn(n), Failed: w})
		}
	}
	out, err := o.DistAvoidingVertexMany(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := o.DistAvoidingVertex(q.V, q.Failed)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("slot %d: batch %d != point %d", i, out[i], want)
		}
	}

	// An invalid slot fails the whole Many call before publishing anything.
	poisoned := append(append([]ftbfs.VertexFailureQuery(nil), queries...),
		ftbfs.VertexFailureQuery{V: 0, Failed: tc.source})
	sentinel := make([]int, len(poisoned))
	for i := range sentinel {
		sentinel[i] = -777
	}
	if _, err := o.DistAvoidingVertexMany(poisoned, sentinel); err == nil {
		t.Fatal("source-failure slot accepted")
	}
	for i, d := range sentinel {
		if d != -777 {
			t.Fatalf("Many published partial result at slot %d on error", i)
		}
	}

	// Each errors the bad slots individually and still answers the rest.
	outs, errs := o.DistAvoidingVertexEach(poisoned, nil, nil)
	if errs[len(poisoned)-1] == nil {
		t.Fatal("Each: source-failure slot not errored")
	}
	if !strings.Contains(errs[len(poisoned)-1].Error(), "cannot fail") {
		t.Fatalf("Each: unexpected error %v", errs[len(poisoned)-1])
	}
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("Each: valid slot %d errored: %v", i, errs[i])
		}
		if outs[i] != out[i] {
			t.Fatalf("Each: slot %d: %d != %d", i, outs[i], out[i])
		}
	}
}

// TestVertexOffPathQueryZeroAllocs asserts the acceptance criterion: an
// off-tree-path vertex failure answers from the intact vector with zero
// allocations per query.
func TestVertexOffPathQueryZeroAllocs(t *testing.T) {
	tc := vertexCorpus()["denser-random"]
	st, err := ftbfs.BuildVertex(tc.g, tc.source)
	if err != nil {
		t.Fatal(err)
	}
	plan := st.Plan()
	o := st.Oracle()
	n := tc.g.N()
	// An off-path pair: a failed leaf of H's BFS tree cannot be on anyone's
	// tree path.
	w := -1
	for x := 0; x < n; x++ {
		if x != tc.source && plan.SubtreeSize(x) == 0 {
			w = x
			break
		}
	}
	if w < 0 {
		t.Skip("no leaf vertex in fixture")
	}
	v := (w + 1) % n
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := o.DistAvoidingVertex(v, w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("off-tree-path vertex failure allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestVertexPoolConcurrent hammers pooled oracles from many goroutines
// (run under -race in CI) and checks every answer against a precomputed
// reference table.
func TestVertexPoolConcurrent(t *testing.T) {
	tc := vertexCorpus()["sparse-random"]
	st, err := ftbfs.BuildVertex(tc.g, tc.source)
	if err != nil {
		t.Fatal(err)
	}
	n := tc.g.N()
	ref := st.Oracle()
	want := make([][]int, n) // want[w][v]
	for w := 0; w < n; w++ {
		if w == tc.source {
			continue
		}
		want[w] = make([]int, n)
		for v := 0; v < n; v++ {
			d, err := ref.DistAvoidingVertexRef(v, w)
			if err != nil {
				t.Fatal(err)
			}
			want[w][v] = d
		}
	}
	pool := st.OraclePool()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for gid := 0; gid < 8; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gid)))
			for iter := 0; iter < 400; iter++ {
				w := rng.Intn(n)
				if w == tc.source {
					continue
				}
				v := rng.Intn(n)
				err := pool.Do(func(o *ftbfs.VertexOracle) error {
					if rng.Intn(4) == 0 {
						queries := []ftbfs.VertexFailureQuery{{V: v, Failed: w}, {V: (v + 3) % n, Failed: w}}
						out, err := o.DistAvoidingVertexMany(queries, nil)
						if err != nil {
							return err
						}
						if out[0] != want[w][v] || out[1] != want[w][(v+3)%n] {
							return fmt.Errorf("batch (v=%d, w=%d): got %v", v, w, out)
						}
						return nil
					}
					d, err := o.DistAvoidingVertex(v, w)
					if err != nil {
						return err
					}
					if d != want[w][v] {
						return fmt.Errorf("(v=%d, w=%d): got %d, want %d", v, w, d, want[w][v])
					}
					return nil
				})
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(gid)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestVertexPersistRoundTrip checks Save → Load byte-for-byte answer
// equality and that the loader rejects a structure whose tree edges were
// stripped.
func TestVertexPersistRoundTrip(t *testing.T) {
	tc := vertexCorpus()["denser-random"]
	st, err := ftbfs.BuildVertex(tc.g, tc.source)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()
	back, err := ftbfs.LoadVertexStructure(tc.g, strings.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != st.Size() || back.Pairs() != st.Pairs() || back.Source() != st.Source() {
		t.Fatalf("round trip changed shape: %d/%d/%d != %d/%d/%d",
			back.Size(), back.Pairs(), back.Source(), st.Size(), st.Pairs(), st.Source())
	}
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Fatal("re-save is not byte-identical")
	}
	o, bo := st.Oracle(), back.Oracle()
	n := tc.g.N()
	for w := 0; w < n; w++ {
		if w == tc.source {
			continue
		}
		for v := 0; v < n; v += 7 {
			d1, err1 := o.DistAvoidingVertex(v, w)
			d2, err2 := bo.DistAvoidingVertex(v, w)
			if err1 != nil || err2 != nil || d1 != d2 {
				t.Fatalf("(v=%d, w=%d): %d/%v != %d/%v", v, w, d1, err1, d2, err2)
			}
		}
	}

	// A record missing a tree edge must not load: the structure could not
	// even reproduce the intact distances.
	lines := strings.Split(strings.TrimSpace(saved), "\n")
	for cut := 2; cut < len(lines); cut++ {
		tampered := strings.Join(append(append([]string(nil), lines[:cut]...), lines[cut+1:]...), "\n")
		if _, err := ftbfs.LoadVertexStructure(tc.g, strings.NewReader(tampered)); err == nil {
			// Dropping a non-tree replacement edge still yields a structure
			// that preserves intact distances (the contract check there is
			// Verify's job); dropping any tree edge must fail.
			continue
		}
		return // at least one removal rejected — the validator is alive
	}
	t.Fatal("no single-edge removal was rejected by the load validator")
}

// TestVertexStructureLoadRejectsEdgeRecord pins the format versioning: a
// version-1 edge record must not load as a vertex structure and vice versa.
func TestVertexStructureLoadRejectsEdgeRecord(t *testing.T) {
	tc := vertexCorpus()["cycle"]
	est, err := ftbfs.Build(tc.g, tc.source, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var edgeRec bytes.Buffer
	if err := est.Save(&edgeRec); err != nil {
		t.Fatal(err)
	}
	if _, err := ftbfs.LoadVertexStructure(tc.g, bytes.NewReader(edgeRec.Bytes())); err == nil {
		t.Fatal("edge record loaded as a vertex structure")
	}
	vst, err := ftbfs.BuildVertex(tc.g, tc.source)
	if err != nil {
		t.Fatal(err)
	}
	var vertexRec bytes.Buffer
	if err := vst.Save(&vertexRec); err != nil {
		t.Fatal(err)
	}
	if _, err := ftbfs.LoadStructure(tc.g, bytes.NewReader(vertexRec.Bytes())); err == nil {
		t.Fatal("vertex record loaded as an edge structure")
	}
	if !strings.HasPrefix(vertexRec.String(), "ftbfs-structure 2 vertex") {
		t.Fatalf("unexpected vertex header: %q", vertexRec.String()[:40])
	}
}
