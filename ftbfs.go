package ftbfs

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"ftbfs/internal/batch"
	"ftbfs/internal/core"
	"ftbfs/internal/graph"
)

// Graph is an undirected graph under construction. Vertices are integers
// 0..N()-1; edges are unweighted (BFS distances count hops). A Graph is
// frozen by the first Build/BuildMulti call, after which AddEdge fails.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return &Graph{g: graph.New(n)} }

// AddEdge inserts the undirected edge {u,v}; self-loops, duplicates and
// out-of-range endpoints are rejected.
func (g *Graph) AddEdge(u, v int) error {
	if g.g.Frozen() {
		return errors.New("ftbfs: graph is frozen (already built against)")
	}
	_, err := g.g.AddEdge(u, v)
	return err
}

// MustAddEdge is AddEdge panicking on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.g.N() }

// M returns the number of edges.
func (g *Graph) M() int { return g.g.M() }

// HasEdge reports whether {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool { return g.g.HasEdge(u, v) }

// Fingerprint returns a stable 64-bit hash of the graph (vertex count plus
// the edge list in insertion order). Registries key built structures by it;
// it is stable across processes, so it also keys on-disk structure caches.
func (g *Graph) Fingerprint() uint64 { return g.g.Fingerprint() }

// Freeze marks the graph immutable (idempotent). Build and BuildBatch freeze
// implicitly; freeze explicitly before sharing one graph across concurrent
// builders, since the first freeze mutates adjacency order.
func (g *Graph) Freeze() { g.g.Freeze() }

// Write serialises the graph in the library's text format.
func (g *Graph) Write(w io.Writer) error { return graph.Encode(w, g.g) }

// ReadGraph parses a graph from the library's text format.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Algorithm selects the construction used by Build.
type Algorithm = core.Algorithm

// Exported algorithm choices; see the core package documentation.
const (
	AlgoAuto     = core.Auto
	AlgoTree     = core.Tree
	AlgoBaseline = core.Baseline
	AlgoEpsilon  = core.Epsilon
	AlgoGreedy   = core.Greedy
)

// BuildOption tunes Build.
type BuildOption func(*core.Options)

// WithAlgorithm forces a specific construction instead of the ε-based
// automatic dispatch.
func WithAlgorithm(a Algorithm) BuildOption {
	return func(o *core.Options) { o.Algorithm = a }
}

// WithGreedyBudget caps the reinforced edges of the greedy heuristic.
func WithGreedyBudget(budget int) BuildOption {
	return func(o *core.Options) { o.GreedyBudget = budget }
}

// WithoutPhase1 ablates Phase S1 of the ε algorithm (more reinforcement,
// fewer backup edges); intended for experiments.
func WithoutPhase1() BuildOption {
	return func(o *core.Options) { o.SkipPhase1 = true }
}

// WithoutPhase2 ablates Phase S2 of the ε algorithm; intended for
// experiments.
func WithoutPhase2() BuildOption {
	return func(o *core.Options) { o.SkipPhase2 = true }
}

// Structure is a built (b, r) FT-BFS structure. Structures are immutable
// once built; the read-only query methods are safe for concurrent use, and
// OraclePool serves concurrent failure-simulation queries.
type Structure struct {
	st *core.Structure

	intactOnce sync.Once
	intactDist []int32 // cached dist(s, ·) in the intact H; see intactDistances

	planOnce sync.Once
	qplan    *QueryPlan // cached serving plan; see Plan

	poolOnce sync.Once
	pool     *OraclePool
}

// Build constructs an ε FT-BFS structure for (g, source). The graph is
// frozen by this call. ε ∈ [0, 1] positions the structure on the
// reinforcement-backup tradeoff: small ε buys few backup edges and many
// reinforced ones, large ε the opposite (Theorem 3.1).
func Build(g *Graph, source int, eps float64, opts ...BuildOption) (*Structure, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	g.g.Freeze()
	st, err := core.Build(g.g, source, eps, o)
	if err != nil {
		return nil, err
	}
	return &Structure{st: st}, nil
}

// Source returns the BFS source.
func (s *Structure) Source() int { return s.st.S }

// Epsilon returns the tradeoff parameter the structure was built with.
func (s *Structure) Epsilon() float64 { return s.st.Eps }

// Size returns |E(H)|.
func (s *Structure) Size() int { return s.st.Size() }

// BackupCount returns b — the number of fault-prone edges purchased.
func (s *Structure) BackupCount() int { return s.st.BackupCount() }

// ReinforcedCount returns r — the number of fail-proof edges purchased.
func (s *Structure) ReinforcedCount() int { return s.st.ReinforcedCount() }

// Cost prices the structure: backupPrice·b + reinforcePrice·r.
func (s *Structure) Cost(backupPrice, reinforcePrice float64) float64 {
	return s.st.Cost(backupPrice, reinforcePrice)
}

// Contains reports whether edge {u,v} belongs to the structure.
func (s *Structure) Contains(u, v int) bool {
	id := s.st.G.EdgeIDOf(u, v)
	return id != graph.NoEdge && s.st.Edges.Contains(id)
}

// IsReinforced reports whether edge {u,v} is reinforced.
func (s *Structure) IsReinforced(u, v int) bool {
	id := s.st.G.EdgeIDOf(u, v)
	return id != graph.NoEdge && s.st.Reinforced.Contains(id)
}

// Edges returns all structure edges as endpoint pairs.
func (s *Structure) Edges() [][2]int { return edgePairs(s.st.G, s.st.Edges) }

// ReinforcedEdges returns the reinforced edges as endpoint pairs.
func (s *Structure) ReinforcedEdges() [][2]int { return edgePairs(s.st.G, s.st.Reinforced) }

func edgePairs(g *graph.Graph, set *graph.EdgeSet) [][2]int {
	out := make([][2]int, 0, set.Len())
	set.ForEach(func(id graph.EdgeID) {
		e := g.EdgeByID(id).Canonical()
		out = append(out, [2]int{int(e.U), int(e.V)})
	})
	return out
}

// Verify exhaustively checks the FT-BFS contract and returns an error
// describing the first violations, or nil. It runs O(n) BFS passes and is
// intended for validation, not hot paths.
func (s *Structure) Verify() error { return core.MustVerify(s.st) }

// Stats exposes per-phase construction diagnostics.
func (s *Structure) Stats() BuildStats { return s.st.Stats }

// BuildStats re-exports the construction diagnostics type.
type BuildStats = core.BuildStats

// WriteDOT renders the base graph with the structure overlaid (reinforced
// edges bold red, backup solid, discarded edges dotted).
func (s *Structure) WriteDOT(w io.Writer) error {
	return graph.WriteDOT(w, s.st.G, graph.DOTOptions{
		Structure:  s.st.Edges,
		Reinforced: s.st.Reinforced,
		Source:     s.st.S,
	})
}

// String implements fmt.Stringer.
func (s *Structure) String() string { return s.st.String() }

// MultiStructure is an ε FT-MBFS structure protecting several sources.
type MultiStructure struct {
	ms *core.MultiStructure
}

// BuildMulti constructs one structure protecting every source in sources
// simultaneously (the FT-MBFS setting of Section 5 of the paper).
func BuildMulti(g *Graph, sources []int, eps float64, opts ...BuildOption) (*MultiStructure, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	g.g.Freeze()
	ms, err := core.BuildMulti(g.g, sources, eps, o)
	if err != nil {
		return nil, err
	}
	return &MultiStructure{ms: ms}, nil
}

// Size, BackupCount and ReinforcedCount mirror Structure.
func (m *MultiStructure) Size() int            { return m.ms.Size() }
func (m *MultiStructure) BackupCount() int     { return m.ms.BackupCount() }
func (m *MultiStructure) ReinforcedCount() int { return m.ms.ReinforcedCount() }

// Verify checks the FT-MBFS contract for every source.
func (m *MultiStructure) Verify() error {
	if viol := core.VerifyMulti(m.ms, 5); len(viol) > 0 {
		return fmt.Errorf("ftbfs: FT-MBFS contract violated: %v", viol)
	}
	return nil
}

// CostPoint is one entry of a SweepCost result.
type CostPoint = core.CostPoint

// SweepCost builds a structure per ε in the grid, prices each with the
// given per-edge costs, and returns the sweep plus the index of the
// cheapest point. A nil grid uses the default {0, ⅛, ¼, ⅜, ½, ¾, 1}.
// The sweep runs through the batch orchestrator, so the BFS tree and the
// replacement-path preprocessing are computed once and shared by every ε.
func SweepCost(g *Graph, source int, grid []float64, backupPrice, reinforcePrice float64) ([]CostPoint, int, error) {
	if grid == nil {
		grid = core.DefaultEpsGrid()
	}
	g.g.Freeze()
	return batch.CostSweep(g.g, source, grid, backupPrice, reinforcePrice, batch.Options{})
}

// PredictOptimalEpsilon returns the paper's closed-form guidance for the
// cost-minimising ε given per-edge prices: ε ≈ log(R/B) / (2 log n),
// clamped to [0, ½].
func PredictOptimalEpsilon(n int, backupPrice, reinforcePrice float64) float64 {
	return core.PredictedOptimalEps(n, backupPrice, reinforcePrice)
}
