package ftbfs

import (
	"fmt"
	"slices"
	"sync"

	"ftbfs/internal/bfs"
	"ftbfs/internal/graph"
	"ftbfs/internal/tree"
	"ftbfs/internal/vertexft"
)

// VertexStructure is a built vertex fault-tolerant BFS structure: a
// subgraph H ⊆ G with dist(s, v, H \ {w}) ≤ dist(s, v, G \ {w}) for every
// vertex v and every failed vertex w ≠ s — the companion problem of the
// paper's edge-failure construction (Parter DISC'14; Parter–Peleg ESA'13).
// Like Structure, it is immutable once built: the read-only query methods
// are safe for concurrent use, and VertexOraclePool serves concurrent
// vertex-failure queries.
type VertexStructure struct {
	st *vertexft.Structure

	intactOnce sync.Once
	intactDist []int32 // cached dist(s, ·) in the intact H; see intactDistances

	planOnce sync.Once
	qplan    *VertexQueryPlan // cached serving plan; see Plan

	poolOnce sync.Once
	pool     *VertexOraclePool
}

// vertexWorkspaces recycles vertexft build workspaces across BuildVertex
// calls: the store's build-through, `serve -vertex-sources` pre-builds and
// /build vertexSources all construct structures one call at a time, and the
// shared workspace is what removes the per-build O(n) scratch allocations
// (see BenchmarkVertexBuild). Entries sized for a different graph are
// resized by the build itself.
var vertexWorkspaces = sync.Pool{New: func() any { return vertexft.NewWorkspace() }}

// BuildVertex constructs the vertex FT-BFS structure for (g, source). The
// graph is frozen by this call. Unlike Build there is no ε: the vertex
// construction has no reinforcement dimension — every edge is fault-prone
// and every non-source vertex may fail.
func BuildVertex(g *Graph, source int) (*VertexStructure, error) {
	g.g.Freeze()
	ws := vertexWorkspaces.Get().(*vertexft.Workspace)
	st, err := vertexft.BuildWith(g.g, source, ws)
	vertexWorkspaces.Put(ws)
	if err != nil {
		return nil, err
	}
	return &VertexStructure{st: st}, nil
}

// Source returns the BFS source.
func (s *VertexStructure) Source() int { return s.st.S }

// Size returns |E(H)|.
func (s *VertexStructure) Size() int { return s.st.Size() }

// Pairs returns the number of ⟨v, w⟩ pairs that purchased a replacement
// last edge during the build (equivalently |H| − |T0|).
func (s *VertexStructure) Pairs() int { return s.st.Pairs }

// Contains reports whether edge {u,v} belongs to the structure.
func (s *VertexStructure) Contains(u, v int) bool {
	id := s.st.G.EdgeIDOf(u, v)
	return id != graph.NoEdge && s.st.Edges.Contains(id)
}

// Edges returns all structure edges as endpoint pairs.
func (s *VertexStructure) Edges() [][2]int { return edgePairs(s.st.G, s.st.Edges) }

// Verify exhaustively checks the vertex FT-BFS contract over every single
// vertex failure; it runs O(n) BFS passes and is intended for validation,
// not hot paths.
func (s *VertexStructure) Verify() error {
	if viol := vertexft.Verify(s.st, 5); len(viol) > 0 {
		return fmt.Errorf("ftbfs: vertex FT-BFS contract violated: %v", viol)
	}
	return nil
}

// intactDistances returns the distance vector of the intact structure H,
// computing it on the first call; shared read-only by every oracle and by
// the query plan.
func (s *VertexStructure) intactDistances() []int32 {
	s.intactOnce.Do(func() {
		sc := bfs.NewScratch(s.st.G.N())
		s.intactDist = sc.DistancesAvoiding(s.st.G, s.st.S,
			bfs.Restriction{BannedEdge: graph.NoEdge, AllowedEdges: s.st.Edges},
			make([]int32, s.st.G.N()))
	})
	return s.intactDist
}

// Dist returns dist(source, v) inside the intact structure H; the vector is
// computed once and cached forever, so the method is safe for concurrent
// use and repeated calls are O(1) lookups.
func (s *VertexStructure) Dist(v int) int {
	return int(s.intactDistances()[v])
}

// VertexQueryPlan is the precomputed serving view of a vertex structure:
// H materialized as its own flat CSR adjacency, the cached intact distance
// vector, and the canonical BFS tree of H with preorder subtree intervals.
// The failure classification mirrors the edge plan one level up:
//
//   - a failed vertex w OFF the tree path of the target v — w is not a
//     proper ancestor of v in H's BFS tree, including every leaf and every
//     vertex unreachable in H — cannot change v's distance: v's tree path
//     survives, so the answer is an O(1) read of the intact vector.
//   - a failed tree vertex w with v hanging below it can only change
//     distances inside w's strict-descendant subtree. The repair search
//     (bfs.Repair.RunAvoidingVertex) seeds that subtree from the
//     intact-distance frontier crossing into it with every arc of w banned
//     — O(Σ deg_H(subtree)) work instead of a full restricted BFS over G.
//
// A VertexQueryPlan is immutable and safe for concurrent use; the per-query
// repair scratch lives in the VertexOracle that uses the plan.
type VertexQueryPlan struct {
	h      *graph.CSR // H's own adjacency; scans touch no non-H arc
	intact []int32    // dist(s, ·) in the intact H, shared with VertexStructure
	t      *tree.Tree // canonical BFS tree of H with subtree intervals
}

// Plan returns the structure's query plan, building it on the first call
// (one CSR extraction plus the ancestry pass) and caching it forever —
// structures are immutable once built.
func (s *VertexStructure) Plan() *VertexQueryPlan {
	s.planOnce.Do(func() {
		g := s.st.G
		h := g.SubgraphCSR(s.st.Edges)
		s.qplan = &VertexQueryPlan{
			h:      h,
			intact: s.intactDistances(),
			t:      tree.BuildAncestry(g.N(), bfs.FromCSR(h, s.st.S)),
		}
	})
	return s.qplan
}

// OnTreePath reports whether the failed vertex w lies on the tree path
// π(s, v) of H's canonical BFS tree (strictly between s and v) — the only
// kind of failure that forces a repair search for target v; all others
// answer in O(1).
func (p *VertexQueryPlan) OnTreePath(w, v int) bool {
	if w < 0 || v < 0 || w >= p.h.N() || v >= p.h.N() || w == v {
		return false
	}
	return p.t.InSubtree(int32(v), int32(w)) && int32(w) != p.t.Root
}

// SubtreeSize returns the number of vertices a failure of w can affect: the
// strict descendants of w in H's BFS tree, 0 for leaves and vertices
// unreachable in H. It is the work bound of the repair search and useful
// for admission control.
func (p *VertexQueryPlan) SubtreeSize(w int) int {
	if w < 0 || w >= p.h.N() || p.t.PreIndex[w] < 0 {
		return 0
	}
	return int(p.t.Size[w]) - 1
}

// dist answers dist(source, v) in H \ {w} using the plan's O(1) paths,
// falling back to r for the subtree repair of a tree-vertex failure. The
// caller owns r and guarantees repairedW is the vertex r last ran for (-1
// for none) and that v ≠ w; dist returns the vertex the scratch holds
// afterwards, so consecutive failures of one vertex — the shape of a
// grouped batch — repair once and serve every target from the same scratch.
func (p *VertexQueryPlan) dist(v int, w int32, r *bfs.Repair, repairedW int32) (d int32, _ int32, viaRepair bool) {
	if p.t.PreIndex[w] < 0 || p.t.Size[w] <= 1 {
		// w is unreachable in H or a leaf of its BFS tree: nobody's tree
		// path runs through it, every distance survives.
		return p.intact[v], repairedW, false
	}
	if !p.t.InSubtree(int32(v), w) {
		// Tree vertex, but v hangs outside the failed subtree: its tree
		// path avoids the failure.
		return p.intact[v], repairedW, false
	}
	if w != repairedW {
		// Subtree(w) is w followed by its strict descendants in preorder;
		// the repair's sub set is exactly the strict descendants — w itself
		// leaves the graph.
		r.RunAvoidingVertex(p.h, p.intact, p.t.Subtree(w)[1:], w)
		repairedW = w
	}
	return r.Dist(int32(v)), repairedW, true
}

// VertexOracle answers distance queries inside a vertex structure under
// simulated single-VERTEX failures. Failure queries run against the
// structure's VertexQueryPlan: a failed vertex off the target's tree path
// is an O(1) lookup of the cached intact vector, a failed tree vertex
// repairs only its strict-descendant subtree; DistAvoidingVertexRef keeps
// the full-BFS search as the reference implementation.
// A VertexOracle is not safe for concurrent use; create one per goroutine
// or check oracles out of a VertexOraclePool.
type VertexOracle struct {
	st      *VertexStructure
	plan    *VertexQueryPlan
	scratch *bfs.Scratch     // Ref path
	dist    []int32          // Ref path
	banned  *graph.VertexSet // Ref path

	// Subtree-repair state, mirroring Oracle: repairedW names the failed
	// vertex whose repair the scratch currently holds, so repeated failures
	// of one vertex — including a whole grouped batch — answer from a
	// single repair run.
	repair    *bfs.Repair
	repairedW int32

	// DistAvoidingVertexMany scratch, reused across batches.
	ids []int32
	ord []int32

	// Plan-path accounting, mirroring Oracle: plain counters folded into
	// the process-wide telemetry totals by VertexOraclePool.Put.
	planHits, planRepairs uint64
}

// Oracle returns a vertex-failure-simulation oracle for the structure.
func (s *VertexStructure) Oracle() *VertexOracle {
	return &VertexOracle{
		st:        s,
		plan:      s.Plan(),
		scratch:   bfs.NewScratch(s.st.G.N()),
		dist:      make([]int32, s.st.G.N()),
		banned:    graph.NewVertexSet(s.st.G.N()),
		repairedW: -1,
	}
}

// Dist returns dist(source, v) inside the intact structure H; it reads the
// structure's shared cached vector, so repeated calls are O(1) lookups.
func (o *VertexOracle) Dist(v int) int { return o.st.Dist(v) }

// failedVertex validates a failed vertex for simulation: it must exist and
// must not be the source (the source cannot fail by contract — there is no
// meaningful dist(s, ·) without s).
func (o *VertexOracle) failedVertex(w int) (int32, error) {
	if w < 0 || w >= o.st.st.G.N() {
		return -1, fmt.Errorf("ftbfs: failed vertex %d out of range [0,%d)", w, o.st.st.G.N())
	}
	if w == o.st.st.S {
		return -1, fmt.Errorf("ftbfs: the source %d cannot fail", w)
	}
	return int32(w), nil
}

// planDist answers one validated vertex-failure query through the query
// plan, keeping the oracle's repair scratch in sync. The v == w case — the
// target itself left the graph — short-circuits to Unreachable, matching
// the restricted-BFS reference.
func (o *VertexOracle) planDist(v int, w int32) int32 {
	if int32(v) == w {
		return bfs.Unreachable
	}
	if o.repair == nil {
		o.repair = bfs.NewRepair(o.st.st.G.N())
	}
	d, repaired, viaRepair := o.plan.dist(v, w, o.repair, o.repairedW)
	o.repairedW = repaired
	if viaRepair {
		o.planRepairs++
	} else {
		o.planHits++
	}
	return d
}

// DistAvoidingVertex returns dist(source, v) in H \ {w}. Failing the source
// is rejected; querying the failed vertex itself answers Unreachable.
//
// The answer comes from the structure's VertexQueryPlan: O(1) when w is off
// the target's tree path in H's BFS tree (the intact distances survive),
// and a subtree-local repair search otherwise. It always equals what the
// full-search DistAvoidingVertexRef returns.
func (o *VertexOracle) DistAvoidingVertex(v, w int) (int, error) {
	if v < 0 || v >= o.st.st.G.N() {
		return 0, fmt.Errorf("ftbfs: vertex %d out of range [0,%d)", v, o.st.st.G.N())
	}
	fw, err := o.failedVertex(w)
	if err != nil {
		return 0, err
	}
	return int(o.planDist(v, fw)), nil
}

// DistAvoidingVertexRef is the reference implementation of
// DistAvoidingVertex: a full restricted BFS over the base graph with w
// banned, rejecting non-H arcs one by one. It is what the plan-backed fast
// path is differential-tested against; prefer DistAvoidingVertex everywhere
// else.
func (o *VertexOracle) DistAvoidingVertexRef(v, w int) (int, error) {
	if v < 0 || v >= o.st.st.G.N() {
		return 0, fmt.Errorf("ftbfs: vertex %d out of range [0,%d)", v, o.st.st.G.N())
	}
	fw, err := o.failedVertex(w)
	if err != nil {
		return 0, err
	}
	o.banned.Clear()
	o.banned.Add(fw)
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: o.banned, AllowedEdges: o.st.st.Edges},
		o.dist)
	return int(o.dist[v]), nil
}

// BaselineDistAvoidingVertex returns dist(source, v) in the full graph G
// minus the failed vertex — the yardstick the vertex FT-BFS contract
// compares against.
func (o *VertexOracle) BaselineDistAvoidingVertex(v, w int) (int, error) {
	if v < 0 || v >= o.st.st.G.N() {
		return 0, fmt.Errorf("ftbfs: vertex %d out of range [0,%d)", v, o.st.st.G.N())
	}
	fw, err := o.failedVertex(w)
	if err != nil {
		return 0, err
	}
	o.banned.Clear()
	o.banned.Add(fw)
	o.scratch.DistancesAvoiding(o.st.st.G, o.st.st.S,
		bfs.Restriction{BannedEdge: graph.NoEdge, BannedVertices: o.banned}, o.dist)
	return int(o.dist[v]), nil
}

// VertexFailureQuery is one entry of a DistAvoidingVertexMany batch: the
// target vertex and the simulated failed vertex.
type VertexFailureQuery struct {
	V      int
	Failed int
}

// DistAvoidingVertexMany answers a vector of (target, failed-vertex)
// queries. The whole batch is validated up front — an invalid query
// (out-of-range target, out-of-range or source failed vertex) fails the
// call before any result is published, so out is never left partially
// written. Valid batches are then answered grouped by failed vertex:
// queries failing the same tree vertex share one subtree repair, and
// off-tree-path failures are O(1) lookups. Results land in out (allocated
// when nil) in query order; each equals what DistAvoidingVertex returns.
func (o *VertexOracle) DistAvoidingVertexMany(queries []VertexFailureQuery, out []int) ([]int, error) {
	if out == nil {
		out = make([]int, len(queries))
	}
	if len(out) != len(queries) {
		return nil, fmt.Errorf("ftbfs: DistAvoidingVertexMany: out has %d slots for %d queries", len(out), len(queries))
	}
	n := o.st.st.G.N()
	o.ids = o.ids[:0]
	o.ord = o.ord[:0]
	for i, q := range queries {
		if q.V < 0 || q.V >= n {
			return nil, fmt.Errorf("ftbfs: query %d: vertex %d out of range [0,%d)", i, q.V, n)
		}
		w, err := o.failedVertex(q.Failed)
		if err != nil {
			return nil, fmt.Errorf("ftbfs: query %d: %w", i, err)
		}
		o.ids = append(o.ids, w)
		o.ord = append(o.ord, int32(i))
	}
	// Group by failed vertex: answering in vertex order means each
	// tree-vertex failure is repaired exactly once and serves all its
	// targets (planDist reuses the scratch while w repeats). The sort runs
	// on the oracle's recycled index buffer, so steady-state batches
	// allocate nothing.
	slices.SortFunc(o.ord, func(a, b int32) int { return int(o.ids[a]) - int(o.ids[b]) })
	for _, i := range o.ord {
		out[i] = int(o.planDist(queries[i].V, o.ids[i]))
	}
	return out, nil
}

// DistAvoidingVertexEach answers a vector of (target, failed-vertex)
// queries with per-query error slots: an invalid query fills errs[i] and
// leaves out[i] at Unreachable instead of failing the whole batch — the
// partial-result contract a scatter-gather router needs. Valid queries are
// still answered grouped by failed vertex, exactly as in
// DistAvoidingVertexMany. out and errs are allocated when nil or mis-sized;
// both are returned.
func (o *VertexOracle) DistAvoidingVertexEach(queries []VertexFailureQuery, out []int, errs []error) ([]int, []error) {
	if len(out) != len(queries) {
		out = make([]int, len(queries))
	}
	if len(errs) != len(queries) {
		errs = make([]error, len(queries))
	}
	n := o.st.st.G.N()
	o.ids = o.ids[:0]
	o.ord = o.ord[:0]
	for i, q := range queries {
		errs[i] = nil
		out[i] = Unreachable
		if q.V < 0 || q.V >= n {
			errs[i] = fmt.Errorf("ftbfs: vertex %d out of range [0,%d)", q.V, n)
			o.ids = append(o.ids, -1)
			continue
		}
		w, err := o.failedVertex(q.Failed)
		if err != nil {
			errs[i] = err
			o.ids = append(o.ids, -1)
			continue
		}
		o.ids = append(o.ids, w)
		o.ord = append(o.ord, int32(i))
	}
	slices.SortFunc(o.ord, func(a, b int32) int { return int(o.ids[a]) - int(o.ids[b]) })
	for _, i := range o.ord {
		out[i] = int(o.planDist(queries[i].V, o.ids[i]))
	}
	return out, errs
}

// VertexOraclePool hands out per-goroutine VertexOracles for one structure,
// mirroring OraclePool: oracles are not concurrency-safe (each owns its BFS
// and repair scratches), so a concurrent server checks one out per request
// and returns it afterwards. All oracles of a pool share the structure's
// cached intact distance vector and query plan. Backed by sync.Pool: idle
// oracles may be dropped under memory pressure and are recreated
// transparently.
type VertexOraclePool struct {
	s *VertexStructure
	p sync.Pool
}

// OraclePool returns the structure's vertex oracle pool, created on the
// first call and shared by subsequent calls.
func (s *VertexStructure) OraclePool() *VertexOraclePool {
	s.poolOnce.Do(func() {
		s.pool = &VertexOraclePool{s: s}
		s.pool.p.New = func() any { return s.Oracle() }
	})
	return s.pool
}

// Get checks an oracle out of the pool, allocating one if the pool is
// empty. Return it with Put when the query burst is done.
func (p *VertexOraclePool) Get() *VertexOracle { return p.p.Get().(*VertexOracle) }

// Put returns an oracle to the pool, folding its plan-path counts into the
// process-wide totals. Only oracles of the pool's own structure are
// accepted; foreign oracles are dropped.
func (p *VertexOraclePool) Put(o *VertexOracle) {
	if o == nil || o.st != p.s {
		return
	}
	flushPlanCounts(&planVertexHits, &planVertexRepairs, &o.planHits, &o.planRepairs)
	p.p.Put(o)
}

// Do checks out an oracle, runs f with it, and returns it to the pool. The
// oracle must not escape f.
func (p *VertexOraclePool) Do(f func(*VertexOracle) error) error {
	o := p.Get()
	defer p.Put(o)
	return f(o)
}
