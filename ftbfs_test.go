package ftbfs_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ftbfs"
)

func ringWithChords(n int) *ftbfs.Graph {
	g := ftbfs.NewGraph(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	for i := 0; i < n; i += 3 {
		j := (i + n/2) % n
		if i != j && !g.HasEdge(i, j) {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

func randomGraph(n, extra int, seed int64) *ftbfs.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := ftbfs.NewGraph(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestGraphAPI(t *testing.T) {
	g := ftbfs.NewGraph(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
	if g.N() != 4 || g.M() != 1 || !g.HasEdge(1, 0) {
		t.Fatal("accessors wrong")
	}
}

func TestGraphFreezesOnBuild(t *testing.T) {
	g := ringWithChords(12)
	if _, err := ftbfs.Build(g, 0, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Fatal("AddEdge after Build accepted")
	}
}

func TestBuildAndVerifyAcrossEps(t *testing.T) {
	for _, eps := range []float64{0, 0.2, 0.4, 0.6, 1} {
		g := ringWithChords(20)
		st, err := ftbfs.Build(g, 0, eps)
		if err != nil {
			t.Fatalf("ε=%g: %v", eps, err)
		}
		if err := st.Verify(); err != nil {
			t.Fatalf("ε=%g: %v", eps, err)
		}
		if st.Size() != st.BackupCount()+st.ReinforcedCount() {
			t.Fatal("count mismatch")
		}
		if st.Epsilon() != eps || st.Source() != 0 {
			t.Fatal("metadata wrong")
		}
	}
}

func TestStructureEdgeQueries(t *testing.T) {
	g := ringWithChords(16)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	edges := st.Edges()
	if len(edges) != st.Size() {
		t.Fatalf("Edges() returned %d, size is %d", len(edges), st.Size())
	}
	for _, e := range edges {
		if !st.Contains(e[0], e[1]) || !st.Contains(e[1], e[0]) {
			t.Fatal("Contains disagrees with Edges")
		}
	}
	for _, e := range st.ReinforcedEdges() {
		if !st.IsReinforced(e[0], e[1]) {
			t.Fatal("IsReinforced disagrees with ReinforcedEdges")
		}
	}
	if st.Contains(0, 99) || st.IsReinforced(0, 99) {
		t.Fatal("non-edges must report false")
	}
}

func TestOracleContract(t *testing.T) {
	g := randomGraph(40, 50, 7)
	st, err := ftbfs.Build(g, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	if o.Dist(0) != 0 {
		t.Fatal("dist to source must be 0")
	}
	// for every backup edge: oracle distance after failure ≤ baseline
	for _, e := range st.Edges() {
		if st.IsReinforced(e[0], e[1]) {
			continue
		}
		for v := 0; v < 40; v += 7 {
			got, err := o.DistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			want, err := o.BaselineDistAvoiding(v, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			if want != ftbfs.Unreachable && (got == ftbfs.Unreachable || got > want) {
				t.Fatalf("failure {%d,%d}: dist(%d) in H = %d > %d in G", e[0], e[1], v, got, want)
			}
		}
	}
	// failing a reinforced edge is rejected
	if re := st.ReinforcedEdges(); len(re) > 0 {
		if _, err := o.DistAvoiding(1, re[0][0], re[0][1]); err == nil {
			t.Fatal("failing a reinforced edge accepted")
		}
	}
	if _, err := o.DistAvoiding(1, 0, 39); err == nil && !g.HasEdge(0, 39) {
		t.Fatal("failing a non-edge accepted")
	}
}

func TestSerialisationRoundTrip(t *testing.T) {
	g := ringWithChords(10)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ftbfs.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("round trip lost data")
	}
	if _, err := ftbfs.ReadGraph(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBuildOptions(t *testing.T) {
	g := randomGraph(30, 40, 3)
	st, err := ftbfs.Build(g, 0, 0.3, ftbfs.WithAlgorithm(ftbfs.AlgoGreedy), ftbfs.WithGreedyBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Algorithm != "greedy" {
		t.Fatalf("algorithm=%s", st.Stats().Algorithm)
	}
	if st.ReinforcedCount() > 4 {
		t.Fatalf("budget exceeded: %d", st.ReinforcedCount())
	}
	g2 := randomGraph(30, 40, 3)
	st2, err := ftbfs.Build(g2, 0, 0.3, ftbfs.WithoutPhase1(), ftbfs.WithoutPhase2())
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildMulti(t *testing.T) {
	g := randomGraph(30, 40, 5)
	ms, err := ftbfs.BuildMulti(g, []int{0, 9, 17}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Verify(); err != nil {
		t.Fatal(err)
	}
	if ms.Size() != ms.BackupCount()+ms.ReinforcedCount() {
		t.Fatal("count mismatch")
	}
}

func TestSweepCostAndPrediction(t *testing.T) {
	g := randomGraph(40, 80, 11)
	points, best, err := ftbfs.SweepCost(g, 0, nil, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if best < 0 || best >= len(points) {
		t.Fatal("bad best index")
	}
	for _, p := range points {
		if p.Cost < points[best].Cost {
			t.Fatal("best not minimal")
		}
	}
	if eps := ftbfs.PredictOptimalEpsilon(1000, 1, 100); eps <= 0 || eps > 0.5 {
		t.Fatalf("prediction out of range: %g", eps)
	}
}

func TestWriteDOT(t *testing.T) {
	g := ringWithChords(8)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph G {") {
		t.Fatal("DOT output malformed")
	}
	if st.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSimulateFailures(t *testing.T) {
	g := randomGraph(50, 70, 31)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.SimulateFailures(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("campaign found %d violations", rep.Violations)
	}
	if rep.Failures != st.BackupCount() || rep.Probes == 0 {
		t.Fatalf("campaign shape wrong: %+v", rep)
	}
	sampled, err := st.SimulateFailures(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Probes != sampled.Failures*3 {
		t.Fatal("sampled probe count wrong")
	}
}
