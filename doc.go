// Package ftbfs constructs fault-tolerant BFS structures that trade
// expensive fail-proof "reinforced" edges against cheap fault-prone
// "backup" edges, implementing
//
//	Merav Parter and David Peleg,
//	"Fault Tolerant BFS Structures: A Reinforcement-Backup Tradeoff",
//	SPAA 2015 (arXiv:1504.04169).
//
// Given a network G and a source s, a (b, r) FT-BFS structure is a subgraph
// H ⊆ G with r reinforced edges (assumed to never fail) and b backup edges
// such that after the failure of any single non-reinforced edge e, the
// surviving structure still preserves all BFS distances from s:
//
//	dist(s, v, H \ {e}) ≤ dist(s, v, G \ {e})   for every v.
//
// The tradeoff (Theorems 3.1 and 5.1 of the paper): for every ε ∈ [0, 1],
// r(n) = Θ̃(n^{1−ε}) reinforced edges are necessary and sufficient for
// b(n) = Θ̃(min{n^{1+ε}, n^{3/2}}) backup edges. ε = 1 recovers the
// classical FT-BFS bound Θ(n^{3/2}); ε = 0 reinforces the BFS tree itself.
//
// # Quick start
//
//	g := ftbfs.NewGraph(4)
//	g.MustAddEdge(0, 1)
//	g.MustAddEdge(1, 2)
//	g.MustAddEdge(2, 3)
//	g.MustAddEdge(3, 0)
//	st, err := ftbfs.Build(g, 0, 0.25)
//	if err != nil { ... }
//	fmt.Println(st.BackupCount(), st.ReinforcedCount())
//
// Use Structure.Oracle for distance queries under simulated failures, and
// SweepCost / PredictOptimalEpsilon to pick ε from the per-edge prices of
// backup and reinforced links. BuildBatch builds many (source, ε, algorithm)
// requests at once, sharing the BFS tree, the replacement-path preprocessing
// and the reinforcement sweep per source.
//
// # Concurrent serving
//
// Structures are immutable once built and safe to share; Oracles are not
// (each owns its search scratches). A concurrent server therefore checks
// oracles out of Structure.OraclePool — a sync.Pool-backed checkout that
// recycles scratch buffers across requests. The intact distance vector
// behind Oracle.Dist is computed once per structure and cached forever
// (structures never change), shared by every oracle of the pool.
//
// Failure queries run against the structure's QueryPlan (Structure.Plan,
// built once and shared): H is materialized as its own flat CSR adjacency,
// and the plan classifies the failed edge against H's canonical BFS tree.
// A failure off the tree — including every edge outside H — cannot change
// any distance, so the answer is an O(1) read of the intact vector; a
// failed tree edge repairs only the subtree hanging below it, seeded from
// the intact-distance frontier crossing into it (bfs.Repair). The original
// full-BFS search survives as Oracle.DistAvoidingRef, the reference the
// fast paths are differential-tested against. Oracle.DistAvoidingMany
// validates a whole query vector up front (an error never publishes
// partial results) and answers it grouped by failed edge, so each distinct
// tree-edge failure is repaired once for all its targets.
//
// The internal/store package keys built structures by
// (Graph.Fingerprint, source, ε, algorithm) with LRU eviction, builds
// misses on demand through BuildBatch, and — given a directory — persists
// everything via Save/LoadStructure so evicted entries load back through and
// a restarted process warm-starts from disk. internal/server exposes that
// registry over HTTP/JSON ("ftbfs serve": /build, /dist, /dist-avoiding,
// /batch-query, /stats, /healthz, /readyz); /batch-query vectors may span
// several structures and answer with per-query error slots
// (Oracle.DistAvoidingEach).
//
// # Vertex failures
//
// The same serving machinery exists one model up, for single VERTEX
// failures (the companion problem of Parter DISC'14 / Parter–Peleg
// ESA'13): BuildVertex constructs a VertexStructure whose
// VertexQueryPlan mirrors the edge plan — a failed vertex off the
// target's tree path in H's BFS tree is an O(1) read of the cached intact
// vector, a failed tree vertex repairs only its strict-descendant subtree
// with every arc of the failed vertex banned
// (bfs.Repair.RunAvoidingVertex). VertexOracle.DistAvoidingVertex is the
// point query, DistAvoidingVertexRef the full-BFS reference it is
// differential-tested against, DistAvoidingVertexMany /
// DistAvoidingVertexEach the grouped batch forms, and
// VertexStructure.OraclePool the concurrent checkout. VertexStructure.Save
// and LoadVertexStructure persist the structure as a version-2 record of
// the structure text format (edge files keep their version-1 record); the
// store keys vertex structures under a failure-model Key dimension
// (store.VertexKey) with the same single-flight build-through, LRU and
// persist directory, and the server exposes them on /dist-avoiding-vertex
// plus "failedVertex" slots in /batch-query vectors.
//
// # Sharded serving
//
// internal/cluster scales the serving plane past one machine: a
// consistent-hash ring over the structure keyspace with a configurable
// replication factor, shard membership with health probes, and a router
// ("ftbfs route") that proxies the full query surface to the owning shards
// — hedged reads across replicas for point queries, scatter-gather with
// per-shard sub-batching for multi-structure batch vectors, and
// single-flight build fan-out so one logical /build lands on every replica
// exactly once. The ring depends only on shard IDs, so every router with
// the same member set routes identically and a shard rejoin moves no keys.
// cluster.StartLocal boots an N-shard cluster plus router in-process for
// tests and benchmarks.
//
// # Binary wire protocol and slab persistence
//
// HTTP/JSON stays the compatibility surface, but the hot paths have binary
// equivalents. Structure.SaveSlab and VertexStructure.SaveSlab write a
// version-3 binary record ("slab"): a fixed little-endian header plus
// 8-aligned array sections holding exactly the serving arrays the query
// plan needs, guarded by a CRC-32C checksum. LoadStructure and
// LoadVertexStructure sniff the format from the first bytes — text records
// (versions 1 and 2) keep loading unchanged — and on little-endian hosts a
// slab's arrays are reinterpreted in place rather than parsed, so loading
// is I/O-bound and the store's warm start and load-through revalidate
// cheaply instead of re-deriving. The store persists slabs atomically
// (temp file, fsync, rename, directory sync) so a crash never leaves a
// torn record.
//
// internal/wire speaks a length-prefixed binary frame protocol over
// persistent TCP connections ("ftbfs serve -wire"): requests carry a fixed
// binary point-query or batch payload and a request id, responses may
// arrive out of order, and both sides coalesce bursts of frames into
// shared syscalls, which is what removes the per-request HTTP tax. The
// server side funnels wire requests through the same handlers as HTTP, so
// the two transports are answer-identical by construction (and
// differential-tested, transport against transport against oracle).
// Shards advertise their wire address on /readyz; the router dials it
// automatically and falls back to HTTP per request on any transport
// failure, so a mixed-version cluster keeps answering.
package ftbfs
