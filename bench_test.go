package ftbfs_test

// One benchmark per experiment table (E1–E10 of EXPERIMENTS.md) plus
// micro-benchmarks of the underlying engines. Sizes are kept moderate so
// `go test -bench=. -benchmem` completes in minutes; the experiment binary
// (cmd/experiments) runs the full-size tables.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"ftbfs"
	"ftbfs/internal/batch"
	"ftbfs/internal/bfs"
	"ftbfs/internal/cluster"
	"ftbfs/internal/core"
	"ftbfs/internal/experiments"
	"ftbfs/internal/gen"
	"ftbfs/internal/graph"
	"ftbfs/internal/replacement"
	"ftbfs/internal/sensitivity"
	"ftbfs/internal/server"
	"ftbfs/internal/simulate"
	"ftbfs/internal/store"
	"ftbfs/internal/tree"
	"ftbfs/internal/vertexft"
	"ftbfs/internal/wire"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// E1: the headline reinforcement-backup tradeoff table (Thm 3.1).
func BenchmarkE1TradeoffSweep(b *testing.B) { benchExperiment(b, "tradeoff-upper") }

// E2: baseline FT-BFS size scaling ([14], ε = 1).
func BenchmarkE2BaselineN32(b *testing.B) { benchExperiment(b, "baseline-n32") }

// E3: single-source lower bound (Thm 5.1, Claim 5.3).
func BenchmarkE3LowerBound(b *testing.B) { benchExperiment(b, "lower-bound") }

// E4: multi-source lower bound (Thm 5.4).
func BenchmarkE4MBFSLowerBound(b *testing.B) { benchExperiment(b, "mbfs-lower-bound") }

// E5: cost-optimal ε vs price ratio (§1 corollary).
func BenchmarkE5CostCurve(b *testing.B) { benchExperiment(b, "cost-curve") }

// E6: the introduction's clique example.
func BenchmarkE6CliqueExample(b *testing.B) { benchExperiment(b, "clique-example") }

// E7: tree-decomposition facts (Fact 3.3, Fact 4.1).
func BenchmarkE7Decomposition(b *testing.B) { benchExperiment(b, "decomposition") }

// E8: interference census (Fig. 1–2).
func BenchmarkE8Interference(b *testing.B) { benchExperiment(b, "interference") }

// E9: phase ablation.
func BenchmarkE9PhaseAblation(b *testing.B) { benchExperiment(b, "phase-ablation") }

// E10: exhaustive contract verification (Def. 2.1).
func BenchmarkE10VerifyExact(b *testing.B) { benchExperiment(b, "verify-exact") }

// --- micro-benchmarks of the engines -----------------------------------

func benchGraph(n int) *graph.Graph { return gen.RandomConnected(n, 3*n, 7) }

func BenchmarkBFSTree(b *testing.B) {
	g := benchGraph(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.From(g, 0)
	}
}

func BenchmarkRestrictedBFS(b *testing.B) {
	g := benchGraph(5000)
	sc := bfs.NewScratch(g.N())
	out := make([]int32, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.DistancesAvoiding(g, 0, bfs.Restriction{BannedEdge: graph.EdgeID(i % g.M())}, out)
	}
}

func BenchmarkTreeDecomposition(b *testing.B) {
	g := benchGraph(5000)
	bt := bfs.From(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Build(g, bt)
	}
}

func BenchmarkLCA(b *testing.B) {
	g := benchGraph(5000)
	t := tree.Build(g, bfs.From(g, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i % g.N())
		v := int32((i * 2654435761) % g.N())
		t.LCA(u, v)
	}
}

func BenchmarkReplacementAllPairs(b *testing.B) {
	lb := gen.LowerBoundParams(3, 4, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := replacement.NewEngine(lb.G, lb.S)
		en.AllPairs()
	}
}

func BenchmarkBuildEpsilon(b *testing.B) {
	lb := gen.LowerBoundParams(4, 5, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(lb.G, lb.S, 0.25, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildBaseline(b *testing.B) {
	lb := gen.LowerBoundParams(4, 5, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(lb.G, lb.S, 1, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildBatch compares one batched build of 8 (source, ε) requests
// on the Epsilon path against the equivalent loop of sequential core.Build
// calls. The batch shares, per source, the canonical trees, the Phase S0
// replacement-path pass and the reinforcement sweep, and recycles engine
// scratch and the Phase S2 workspace across all requests — so it wins on
// wall-clock and allocations even single-threaded.
func BenchmarkBuildBatch(b *testing.B) {
	g := gen.RandomConnected(600, 1800, 13)
	var reqs []batch.Request
	for _, s := range []int{0, 151} {
		for _, eps := range []float64{0.15, 0.2, 0.25, 0.3} {
			reqs = append(reqs, batch.Request{Source: s, Eps: eps})
		}
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := core.Build(g, r.Source, r.Eps, r.Opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := batch.Build(g, reqs, batch.Options{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkOracleFailureQuery(b *testing.B) {
	g := ftbfs.NewGraph(400)
	lb := gen.RandomConnected(400, 1200, 9)
	for _, e := range lb.Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	o := st.Oracle()
	edges := st.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if st.IsReinforced(e[0], e[1]) {
			continue
		}
		if _, err := o.DistAvoiding(i%400, e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeFixture builds one structure on a moderate random graph and
// returns it plus its failable edges; shared by the serving benchmarks.
func benchServeFixture(b *testing.B) (*ftbfs.Structure, [][2]int) {
	b.Helper()
	g := ftbfs.NewGraph(400)
	for _, e := range gen.RandomConnected(400, 1200, 9).Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	var edges [][2]int
	for _, e := range st.Edges() {
		if !st.IsReinforced(e[0], e[1]) {
			edges = append(edges, e)
		}
	}
	return st, edges
}

// BenchmarkOraclePool measures concurrent failure queries: a fresh oracle per
// query (what a naive server would allocate) against checkout from the
// structure's OraclePool, and the pooled batched DistAvoidingMany path that
// answers 16 queries per checkout with one early-exiting BFS scratch.
func BenchmarkOraclePool(b *testing.B) {
	st, edges := benchServeFixture(b)
	n := 400
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				k := int(i.Add(1))
				e := edges[k%len(edges)]
				o := st.Oracle()
				if _, err := o.DistAvoiding(k%n, e[0], e[1]); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		pool := st.OraclePool()
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				k := int(i.Add(1))
				e := edges[k%len(edges)]
				err := pool.Do(func(o *ftbfs.Oracle) error {
					_, err := o.DistAvoiding(k%n, e[0], e[1])
					return err
				})
				if err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("pooled-many16", func(b *testing.B) {
		b.ReportAllocs()
		pool := st.OraclePool()
		queries := make([]ftbfs.FailureQuery, 16)
		out := make([]int, len(queries))
		for j := range queries {
			e := edges[j%len(edges)]
			queries[j] = ftbfs.FailureQuery{V: (j * 31) % n, FailedU: e[0], FailedV: e[1]}
		}
		for i := 0; i < b.N; i++ {
			err := pool.Do(func(o *ftbfs.Oracle) error {
				_, err := o.DistAvoidingMany(queries, out)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryPlan measures the plan-backed failure-query fast paths that
// make serving sublinear in practice, against the full-BFS reference:
//
//   - nontree-edge: the failed edge is off H's BFS tree, so the answer is an
//     O(1) read of the cached intact vector (~0 allocs/op, no search).
//   - tree-edge: the failed edge is a tree edge; only the subtree hanging
//     below it is repaired (bfs.Repair over H's own CSR arcs).
//   - batch16-grouped: a 16-query vector over 4 distinct failed tree edges,
//     grouped by DistAvoidingMany so each failure repairs once.
//   - reference-full-bfs: the pre-plan cost — a restricted BFS over all of
//     G per query — kept as the yardstick the fast paths are gated against.
func BenchmarkQueryPlan(b *testing.B) {
	st, edges := benchServeFixture(b)
	plan := st.Plan()
	var treeEdges, nonTree [][2]int
	for _, e := range edges {
		if plan.IsTreeEdge(e[0], e[1]) {
			treeEdges = append(treeEdges, e)
		} else {
			nonTree = append(nonTree, e)
		}
	}
	if len(treeEdges) == 0 || len(nonTree) == 0 {
		b.Fatalf("degenerate fixture: %d tree edges, %d non-tree", len(treeEdges), len(nonTree))
	}
	const n = 400
	// The child (deeper) endpoint of a tree edge always lies inside the
	// failed subtree, so targeting it forces a repair run on every op —
	// otherwise most targets of this fixture hang outside the (typically
	// small) subtree and the benchmark would measure the O(1) path instead.
	childOf := func(e [2]int) int {
		if st.Dist(e[0]) > st.Dist(e[1]) {
			return e[0]
		}
		return e[1]
	}
	pool := st.OraclePool()
	b.Run("nontree-edge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := nonTree[i%len(nonTree)]
			err := pool.Do(func(o *ftbfs.Oracle) error {
				_, err := o.DistAvoiding(i%n, e[0], e[1])
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-edge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := treeEdges[i%len(treeEdges)] // rotate edges: no repair reuse between ops
			err := pool.Do(func(o *ftbfs.Oracle) error {
				_, err := o.DistAvoiding(childOf(e), e[0], e[1])
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch16-grouped", func(b *testing.B) {
		b.ReportAllocs()
		queries := make([]ftbfs.FailureQuery, 16)
		out := make([]int, len(queries))
		for j := range queries {
			e := treeEdges[(j%4)*len(treeEdges)/4] // 4 distinct failures, 4 targets each
			v := (j * 31) % n
			if j%2 == 0 {
				v = childOf(e) // half the targets force the repaired subtree
			}
			queries[j] = ftbfs.FailureQuery{V: v, FailedU: e[0], FailedV: e[1]}
		}
		for i := 0; i < b.N; i++ {
			err := pool.Do(func(o *ftbfs.Oracle) error {
				_, err := o.DistAvoidingMany(queries, out)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference-full-bfs", func(b *testing.B) {
		b.ReportAllocs()
		o := st.Oracle()
		for i := 0; i < b.N; i++ {
			e := treeEdges[i%len(treeEdges)]
			if _, err := o.DistAvoidingRef(childOf(e), e[0], e[1]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeQueries measures the HTTP serving hot path end to end:
// concurrent GET /dist-avoiding requests and POST /batch-query vectors
// against one structure resident in the store.
// serveClients sets the offered concurrency for the serving benchmarks
// (BenchmarkServeQueries and BenchmarkWireServe): SetParallelism multiplies
// GOMAXPROCS, so both transports face the same number of in-flight clients
// regardless of core count. Under concurrent load HTTP/1.1 opens one
// connection per in-flight request while the wire protocol pipelines frames
// over its small pool — the very difference the pair of benchmarks exists to
// price.
const serveClients = 8

func BenchmarkServeQueries(b *testing.B) {
	reg, err := store.New(0, "")
	if err != nil {
		b.Fatal(err)
	}
	g := ftbfs.NewGraph(400)
	for _, e := range gen.RandomConnected(400, 1200, 9).Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	fp, err := reg.AddGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	st, err := reg.GetOrBuild(context.Background(), store.Key{Graph: fp, Source: 0, Eps: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	var edges [][2]int
	for _, e := range st.Edges() {
		if !st.IsReinforced(e[0], e[1]) {
			edges = append(edges, e)
		}
	}
	ts := httptest.NewServer(server.New(reg))
	defer ts.Close()
	fpHex := fmt.Sprintf("%016x", fp)

	b.Run("dist-avoiding", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(serveClients)
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			client := &http.Client{}
			for pb.Next() {
				k := int(i.Add(1))
				e := edges[k%len(edges)]
				url := fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=%d&fu=%d&fv=%d",
					ts.URL, fpHex, k%400, e[0], e[1])
				resp, err := client.Get(url)
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		})
	})
	b.Run("batch-query16", func(b *testing.B) {
		b.ReportAllocs()
		eps := 0.3
		req := server.BatchQueryRequest{Graph: fpHex, Eps: &eps}
		for j := 0; j < 16; j++ {
			e := edges[j%len(edges)]
			req.Queries = append(req.Queries, server.BatchQuery{V: (j * 31) % 400, Fail: e})
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		var i atomic.Int64
		b.SetParallelism(serveClients)
		b.RunParallel(func(pb *testing.PB) {
			client := &http.Client{}
			for pb.Next() {
				i.Add(1)
				resp, err := client.Post(ts.URL+"/batch-query", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		})
	})
}

// BenchmarkClusterRoute measures the sharded serving plane end to end on an
// in-process local cluster (internal/cluster.StartLocal): real HTTP from
// client to router to shard and back, replication factor 2. Point queries
// exercise the hedged-read path on one structure; batch256 scatter-gathers a
// 256-query vector spanning 16 structures into per-shard sub-batches.
//
// The scaling signal is the shardq/op metric: the maximum number of queries
// any single shard served per batch. One shard absorbs all 256; four shards
// split the vector roughly evenly, so per-shard load — the quantity that
// caps throughput when shards are separate machines — drops ~4×. Wall-clock
// ns/op on a shared-CPU test box cannot show that win (every "shard" here
// competes for the same cores, so fan-out is pure overhead locally); ns/op
// is still reported and gated to catch routing-layer regressions.
func BenchmarkClusterRoute(b *testing.B) {
	const n = 400
	// 16 structures give the ring enough keys to spread primaries across 4
	// shards (4 keys alone skew badly); the batch below spans all of them.
	sources := make([]int, 16)
	for i := range sources {
		sources[i] = i * 25
	}
	newGraph := func() *ftbfs.Graph {
		g := ftbfs.NewGraph(n)
		for _, e := range gen.RandomConnected(n, 1200, 9).Edges() {
			g.MustAddEdge(int(e.U), int(e.V))
		}
		return g
	}
	// Per-source failable edges from local ground-truth builds (reinforced
	// sets differ per source, and a reinforced edge cannot fail).
	failable := make(map[int][][2]int)
	for _, src := range sources {
		st, err := ftbfs.Build(newGraph(), src, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range st.Edges() {
			if !st.IsReinforced(e[0], e[1]) {
				failable[src] = append(failable[src], e)
			}
		}
	}

	for _, nShards := range []int{1, 4} {
		lc, err := cluster.StartLocal(nShards, cluster.LocalOptions{
			Replicas: 2,
			// An in-process cluster under full benchmark load can exceed the
			// production hedge delay on scheduler noise alone; a high delay
			// keeps the hedged-read path wired in without duplicating load.
			Router: cluster.RouterOptions{HedgeDelay: 50 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		g := newGraph()
		var text bytes.Buffer
		if err := g.Write(&text); err != nil {
			b.Fatal(err)
		}
		var br server.BuildResponse
		body, _ := json.Marshal(server.BuildRequest{Graph: text.String(), Sources: sources, Eps: []float64{0.3}})
		resp, err := http.Post(lc.URL()+"/build", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil || len(br.Structures) != len(sources) {
			b.Fatalf("cluster build failed: %v (%d structures)", err, len(br.Structures))
		}

		b.Run(fmt.Sprintf("point-s%d", nShards), func(b *testing.B) {
			b.ReportAllocs()
			edges := failable[0]
			var i atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				client := &http.Client{}
				for pb.Next() {
					k := int(i.Add(1))
					e := edges[k%len(edges)]
					url := fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=%d&fu=%d&fv=%d",
						lc.URL(), br.Fingerprint, k%n, e[0], e[1])
					r, err := client.Get(url)
					if err != nil {
						b.Error(err)
						return
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						b.Errorf("status %d", r.StatusCode)
						return
					}
				}
			})
		})
		// The batch sub-benchmark is a single sequential client measuring
		// end-to-end latency of one large multi-structure vector: with 4
		// shards, the router's per-shard sub-batches decode, answer and
		// encode in parallel on different shard servers, so the linear
		// per-query serving cost splits across the cluster while the
		// single shard pays it all in one request.
		b.Run(fmt.Sprintf("batch256-s%d", nShards), func(b *testing.B) {
			b.ReportAllocs()
			eps := 0.3
			req := server.BatchQueryRequest{Graph: br.Fingerprint, Eps: &eps}
			for j := 0; j < 256; j++ {
				src := sources[j%len(sources)]
				srcCopy := src
				e := failable[src][j%len(failable[src])]
				req.Queries = append(req.Queries, server.BatchQuery{
					Source: &srcCopy, V: (j * 31) % n, Fail: e,
				})
			}
			payload, err := json.Marshal(req)
			if err != nil {
				b.Fatal(err)
			}
			shardQueries := func() []uint64 {
				out := make([]uint64, len(lc.Shards))
				for si, sh := range lc.Shards {
					var sr server.StatsResponse
					r, err := http.Get(sh.Addr() + "/stats")
					if err != nil {
						b.Fatal(err)
					}
					err = json.NewDecoder(r.Body).Decode(&sr)
					r.Body.Close()
					if err != nil {
						b.Fatal(err)
					}
					out[si] = sr.Queries
				}
				return out
			}
			client := &http.Client{}
			before := shardQueries()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := client.Post(lc.URL()+"/batch-query", "application/json", bytes.NewReader(payload))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					b.Fatalf("status %d", r.StatusCode)
				}
			}
			b.StopTimer()
			after := shardQueries()
			var maxShard uint64
			for si := range after {
				if d := after[si] - before[si]; d > maxShard {
					maxShard = d
				}
			}
			b.ReportMetric(float64(maxShard)/float64(b.N), "shardq/op")
		})
		lc.Close()
	}
}

// BenchmarkRebalance measures the elastic-cluster machinery on an in-process
// 3-shard / R=2 cluster. "handoff" is raw record-transfer throughput over the
// shards' persistent binary protocol (the same FetchRecord path a rebalance
// pull takes; bytes/op makes it an MB/s figure). "point-during-transfer"
// measures routed point-read latency while shards continuously join and drain
// in the background — every read races a live rebalance — and reports the
// p99 alongside the mean, the serving-plane cost of moving structures while
// serving them.
func BenchmarkRebalance(b *testing.B) {
	const n = 400
	sources := make([]int, 16)
	for i := range sources {
		sources[i] = i * 25
	}
	g := ftbfs.NewGraph(n)
	for _, e := range gen.RandomConnected(n, 1200, 9).Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	var text bytes.Buffer
	if err := g.Write(&text); err != nil {
		b.Fatal(err)
	}
	st0, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	var failable [][2]int
	for _, e := range st0.Edges() {
		if !st0.IsReinforced(e[0], e[1]) {
			failable = append(failable, e)
		}
	}

	lc, err := cluster.StartLocal(3, cluster.LocalOptions{
		Replicas: 2,
		Router:   cluster.RouterOptions{HedgeDelay: 50 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	var br server.BuildResponse
	body, _ := json.Marshal(server.BuildRequest{Graph: text.String(), Sources: sources, Eps: []float64{0.3}})
	resp, err := http.Post(lc.URL()+"/build", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if err != nil || len(br.Structures) != len(sources) {
		b.Fatalf("cluster build failed: %v (%d structures)", err, len(br.Structures))
	}
	var fpU uint64
	if _, err := fmt.Sscanf(br.Fingerprint, "%016x", &fpU); err != nil {
		b.Fatal(err)
	}

	b.Run("handoff", func(b *testing.B) {
		// Fetch a record the way a pulling shard does: over the holder's
		// persistent wire connections.
		key := store.Key{Graph: fpU, Source: 0, Eps: 0.3}
		var holder string
		for _, sh := range lc.Shards {
			if sh.Store.Has(key) {
				holder = sh.Server.WireAddr()
				break
			}
		}
		if holder == "" {
			b.Fatal("no shard holds the benchmark key")
		}
		wc := wire.NewClient(holder, 2)
		defer wc.Close()
		wk := &wire.HandoffKey{FP: fpU, EpsBits: math.Float64bits(0.3), Source: 0}
		ctx := context.Background()
		rec, werr, err := wc.FetchRecord(ctx, wk)
		if err != nil || werr != nil {
			b.Fatalf("FetchRecord: %v / %v", err, werr)
		}
		b.SetBytes(int64(len(rec)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, werr, err := wc.FetchRecord(ctx, wk); err != nil || werr != nil {
				b.Fatalf("FetchRecord: %v / %v", err, werr)
			}
		}
	})

	b.Run("point-during-transfer", func(b *testing.B) {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := lc.AddShard(ctx); err != nil {
					b.Error(err)
					return
				}
				if _, err := lc.RemoveShard(ctx, len(lc.Shards)-1); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		client := &http.Client{}
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := failable[i%len(failable)]
			url := fmt.Sprintf("%s/dist-avoiding?graph=%s&eps=0.3&v=%d&fu=%d&fv=%d",
				lc.URL(), br.Fingerprint, i%n, e[0], e[1])
			t0 := time.Now()
			r, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			lat = append(lat, time.Since(t0))
			if r.StatusCode != http.StatusOK {
				b.Fatalf("status %d mid-transfer", r.StatusCode)
			}
		}
		b.StopTimer()
		close(stop)
		<-done
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	})
}

// BenchmarkMutate measures the live-graph machinery. "rebuild-delta" vs
// "rebuild-full" price the two ways a resident structure crosses a
// generation: the DeltaRebuild carry-over (a deletes-only batch touching no
// H edge re-keys the edge sets and rebuilds only the serving plan) against
// the full ftbfs.Build the slow path pays — their ratio is the delta win the
// store's mutation path banks on. "point-during-mutations" measures routed
// point-read latency on a 3-shard / R=2 local cluster while a background
// /mutate stream advances the lineage's generation continuously — deletes
// (delta carry-over on every holder) alternating with re-inserts (full
// rebuild) — and reports the p99 alongside the mean; queries never block on
// a rebuild, and this gate keeps it that way.
func BenchmarkMutate(b *testing.B) {
	const n = 400
	g := ftbfs.NewGraph(n)
	var edges [][2]int
	for _, e := range gen.RandomConnected(n, 1200, 9).Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
		edges = append(edges, [2]int{int(e.U), int(e.V)})
	}
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	// A deletes-only batch of non-H edges is exactly what the delta fast
	// path accepts; H contains a spanning tree, so removing them cannot
	// disconnect the graph.
	var victims []ftbfs.Mutation
	for _, e := range edges {
		if len(victims) == 3 {
			break
		}
		if !st.Contains(e[0], e[1]) {
			victims = append(victims, ftbfs.Mutation{Op: ftbfs.MutDelete, U: e[0], V: e[1]})
		}
	}
	if len(victims) < 3 {
		b.Fatal("degenerate fixture: fewer than 3 non-H edges")
	}
	g2, delta, err := g.Mutate(victims)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("rebuild-delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, ok := ftbfs.DeltaRebuild(st, g2, delta)
			if !ok || s == nil {
				b.Fatal("delta fast path refused an eligible batch")
			}
		}
	})
	b.Run("rebuild-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ftbfs.Build(g2, 0, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("point-during-mutations", func(b *testing.B) {
		lc, err := cluster.StartLocal(3, cluster.LocalOptions{
			Replicas: 2,
			Router:   cluster.RouterOptions{HedgeDelay: 50 * time.Millisecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer lc.Close()
		var text bytes.Buffer
		if err := g.Write(&text); err != nil {
			b.Fatal(err)
		}
		var br server.BuildResponse
		body, _ := json.Marshal(server.BuildRequest{Graph: text.String(), Sources: []int{0}, Eps: []float64{0.3}})
		resp, err := http.Post(lc.URL()+"/build", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil || len(br.Structures) != 1 {
			b.Fatalf("cluster build failed: %v (%d structures)", err, len(br.Structures))
		}
		// The background stream deletes and re-inserts one non-H edge, so
		// every other generation takes the delta path and the rest pay a
		// full rebuild — while intact distances (what /dist answers) stay
		// identical across all of them.
		churn := victims[0]
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			client := &http.Client{}
			op := "delete"
			for {
				select {
				case <-stop:
					return
				default:
				}
				mb, _ := json.Marshal(server.MutateRequest{Graph: br.Fingerprint,
					Mutations: []server.MutationJSON{{Op: op, U: churn.U, V: churn.V}}})
				r, err := client.Post(lc.URL()+"/mutate", "application/json", bytes.NewReader(mb))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					b.Errorf("/mutate(%s) status %d mid-stream", op, r.StatusCode)
					return
				}
				if op == "delete" {
					op = "insert"
				} else {
					op = "delete"
				}
			}
		}()
		client := &http.Client{}
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			url := fmt.Sprintf("%s/dist?graph=%s&source=0&eps=0.3&v=%d", lc.URL(), br.Fingerprint, i%n)
			t0 := time.Now()
			r, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			lat = append(lat, time.Since(t0))
			if r.StatusCode != http.StatusOK {
				b.Fatalf("status %d mid-mutation", r.StatusCode)
			}
		}
		b.StopTimer()
		close(stop)
		<-done
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	})
}

func BenchmarkVerifyStructure(b *testing.B) {
	lb := gen.LowerBoundParams(3, 4, 8)
	st, err := core.Build(lb.G, lb.S, 0.25, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if viol := core.Verify(st, 0); len(viol) != 0 {
			b.Fatal("violations")
		}
	}
}

// E11: the vertex-failure extension.
func BenchmarkE11VertexFT(b *testing.B) {
	lb := gen.LowerBoundParams(3, 4, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vertexft.Build(lb.G, lb.S); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVertexBuild measures the vertex construction with a fresh
// workspace per call (vertexft.Build) against BuildWith recycling one
// workspace across calls — what ftbfs.BuildVertex does via its workspace
// pool, so the store's build-through and serve pre-builds take the recycled
// path. The workspace removes the per-call BFS scratch, distance vector,
// banned-vertex set and children-CSR allocations.
func BenchmarkVertexBuild(b *testing.B) {
	g := gen.RandomConnected(300, 900, 7)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vertexft.Build(g, i%8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workspace", func(b *testing.B) {
		b.ReportAllocs()
		ws := vertexft.NewWorkspace()
		for i := 0; i < b.N; i++ {
			if _, err := vertexft.BuildWith(g, i%8, ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVertexQuery measures the vertex-failure serving fast paths the
// VertexQueryPlan provides, against the full-BFS reference:
//
//   - offpath: the failed vertex is off every target's tree path (a leaf of
//     H's BFS tree), so the answer is an O(1) read of the cached intact
//     vector — 0 allocs/op, no search (the gated acceptance path).
//   - tree-vertex: the failed vertex is internal and the target hangs below
//     it; only the strict-descendant subtree is repaired, with every arc of
//     the failed vertex banned.
//   - batch16-grouped: a 16-query vector over 4 distinct failed tree
//     vertices, grouped by DistAvoidingVertexMany so each failure repairs
//     once for all its targets.
//   - reference-full-bfs: the pre-plan cost — a restricted BFS over all of
//     G per query — kept as the yardstick the fast paths are gated against.
func BenchmarkVertexQuery(b *testing.B) {
	const n = 400
	g := ftbfs.NewGraph(n)
	for _, e := range gen.RandomConnected(n, 1200, 9).Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	st, err := ftbfs.BuildVertex(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	plan := st.Plan()
	var leaves, internal []int
	descendant := make(map[int]int) // internal w -> one strict descendant
	for w := 1; w < n; w++ {
		if plan.SubtreeSize(w) == 0 {
			leaves = append(leaves, w)
			continue
		}
		internal = append(internal, w)
		for v := 0; v < n; v++ {
			if v != w && plan.OnTreePath(w, v) {
				descendant[w] = v
				break
			}
		}
	}
	if len(leaves) == 0 || len(internal) < 4 {
		b.Fatalf("degenerate fixture: %d leaves, %d internal tree vertices", len(leaves), len(internal))
	}
	pool := st.OraclePool()
	b.Run("offpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := leaves[i%len(leaves)]
			err := pool.Do(func(o *ftbfs.VertexOracle) error {
				_, err := o.DistAvoidingVertex(i%n, w)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-vertex", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := internal[i%len(internal)] // rotate: no repair reuse between ops
			err := pool.Do(func(o *ftbfs.VertexOracle) error {
				_, err := o.DistAvoidingVertex(descendant[w], w)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch16-grouped", func(b *testing.B) {
		b.ReportAllocs()
		queries := make([]ftbfs.VertexFailureQuery, 16)
		out := make([]int, len(queries))
		for j := range queries {
			w := internal[(j%4)*len(internal)/4] // 4 distinct failures, 4 targets each
			v := (j * 31) % n
			if j%2 == 0 {
				v = descendant[w] // half the targets force the repaired subtree
			}
			queries[j] = ftbfs.VertexFailureQuery{V: v, Failed: w}
		}
		for i := 0; i < b.N; i++ {
			err := pool.Do(func(o *ftbfs.VertexOracle) error {
				_, err := o.DistAvoidingVertexMany(queries, out)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference-full-bfs", func(b *testing.B) {
		b.ReportAllocs()
		o := st.Oracle()
		for i := 0; i < b.N; i++ {
			w := internal[i%len(internal)]
			if _, err := o.DistAvoidingVertexRef(descendant[w], w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSensitivityOracleQuery(b *testing.B) {
	g := gen.RandomConnected(800, 2400, 3)
	o, err := sensitivity.New(g, 0, 32)
	if err != nil {
		b.Fatal(err)
	}
	m := g.M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.DistAvoidingID(i%g.N(), graph.EdgeID(i%m))
	}
}

func BenchmarkFailureCampaign(b *testing.B) {
	lb := gen.LowerBoundParams(2, 3, 8)
	st, err := core.Build(lb.G, lb.S, 0.3, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := simulate.EdgeCampaign(st, 4, int64(i))
		if err != nil || !rep.Clean() {
			b.Fatal("campaign failed")
		}
	}
}

func BenchmarkParallelReinforcementSweep(b *testing.B) {
	lb := gen.LowerBoundParams(4, 5, 30)
	for _, workers := range []int{1, 4} {
		workers := workers
		name := "serial"
		if workers > 1 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(lb.G, lb.S, 0.25, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireServe measures the binary-protocol serving hot path end to
// end on the same fixture as BenchmarkServeQueries: concurrent point queries
// and 16-slot batches over persistent pipelined connections. The ns/op gap
// to BenchmarkServeQueries is the HTTP tax (TCP setup amortized identically;
// what differs is framing, parsing, and allocation).
func BenchmarkWireServe(b *testing.B) {
	reg, err := store.New(0, "")
	if err != nil {
		b.Fatal(err)
	}
	g := ftbfs.NewGraph(400)
	for _, e := range gen.RandomConnected(400, 1200, 9).Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	fp, err := reg.AddGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	st, err := reg.GetOrBuild(context.Background(), store.Key{Graph: fp, Source: 0, Eps: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	var edges [][2]int
	for _, e := range st.Edges() {
		if !st.IsReinforced(e[0], e[1]) {
			edges = append(edges, e)
		}
	}
	srv := server.New(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = wire.Serve(ctx, ln, srv) }()
	// One connection: pipelining supplies the concurrency, and a single
	// stream lets the client's group flush and the server's drain-triggered
	// flush coalesce whole bursts of frames into shared syscalls — on a
	// shared-CPU box extra connections only add syscall overhead.
	wc := wire.NewClient(ln.Addr().String(), 1)
	defer wc.Close()
	epsBits := math.Float64bits(0.3)

	b.Run("dist-avoiding", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(serveClients)
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				k := int(i.Add(1))
				e := edges[k%len(edges)]
				q := wire.PointQuery{FP: fp, EpsBits: epsBits, Source: 0,
					V: int32(k % 400), A: int32(e[0]), B: int32(e[1])}
				d, werr, err := wc.Point(context.Background(), wire.TDistAvoiding, &q)
				if err != nil || werr != nil {
					b.Errorf("wire point: %v %v", err, werr)
					return
				}
				_ = d
			}
		})
	})
	b.Run("batch16", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(serveClients)
		var slots []wire.BatchSlot
		for j := 0; j < 16; j++ {
			e := edges[j%len(edges)]
			slots = append(slots, wire.BatchSlot{PointQuery: wire.PointQuery{
				FP: fp, EpsBits: epsBits, Source: 0,
				V: int32((j * 31) % 400), A: int32(e[0]), B: int32(e[1])}})
		}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				dists, _, werr, err := wc.Batch(context.Background(), slots)
				if err != nil || werr != nil {
					b.Errorf("wire batch: %v %v", err, werr)
					return
				}
				if len(dists) != 16 {
					b.Errorf("%d answers", len(dists))
					return
				}
			}
		})
	})

	// WIRE_METRICS_OUT (set by CI's bench job) captures the exercised
	// server's /metrics exposition so each benchmark run ships a telemetry
	// snapshot artifact alongside its timings.
	if out := os.Getenv("WIRE_METRICS_OUT"); out != "" {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("/metrics = %d", rec.Code)
		}
		if err := os.WriteFile(out, rec.Body.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlabLoad measures load-to-serving-ready — decode a persisted
// structure record and build its query plan — for the text format versus the
// binary slab format, through the same sniffing LoadStructure entry point
// the store uses. The slab path validates and reinterprets; the text path
// re-parses and re-derives.
func BenchmarkSlabLoad(b *testing.B) {
	g := ftbfs.NewGraph(2000)
	for _, e := range gen.RandomConnected(2000, 6000, 9).Edges() {
		g.MustAddEdge(int(e.U), int(e.V))
	}
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	var text, slab bytes.Buffer
	if err := st.Save(&text); err != nil {
		b.Fatal(err)
	}
	if err := st.SaveSlab(&slab); err != nil {
		b.Fatal(err)
	}
	run := func(raw []byte) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				s, err := ftbfs.LoadStructure(g, bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				if s.Plan() == nil {
					b.Fatal("no plan")
				}
			}
		}
	}
	b.Run("text", run(text.Bytes()))
	b.Run("slab", run(slab.Bytes()))
}
