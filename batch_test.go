package ftbfs_test

import (
	"bytes"
	"testing"

	"ftbfs"
)

// TestBuildBatchByteIdenticalToSequential is the BuildBatch acceptance
// contract: over ≥ 8 (source, ε) requests the batched structures serialise
// byte-identically (via Save) to sequential Build calls, and every structure
// passes Verify.
func TestBuildBatchByteIdenticalToSequential(t *testing.T) {
	reqs := []ftbfs.BatchRequest{
		{Source: 0, Eps: 0.2},
		{Source: 0, Eps: 0.3},
		{Source: 0, Eps: 0.45},
		{Source: 5, Eps: 0.25},
		{Source: 5, Eps: 0},  // tree branch
		{Source: 11, Eps: 1}, // baseline branch
		{Source: 11, Eps: 0.35},
		{Source: 17, Eps: 0.3, Options: []ftbfs.BuildOption{ftbfs.WithAlgorithm(ftbfs.AlgoGreedy)}},
		{Source: 17, Eps: 0.2, Options: []ftbfs.BuildOption{ftbfs.WithoutPhase2()}},
	}

	save := func(st *ftbfs.Structure) string {
		var buf bytes.Buffer
		if err := st.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		return buf.String()
	}

	want := make([]string, len(reqs))
	seqG := randomGraph(80, 160, 42)
	for i, r := range reqs {
		st, err := ftbfs.Build(seqG, r.Source, r.Eps, r.Options...)
		if err != nil {
			t.Fatalf("sequential build %d: %v", i, err)
		}
		want[i] = save(st)
	}

	for _, workers := range []int{1, 4} {
		batchG := randomGraph(80, 160, 42) // same seed: identical graph
		sts, err := ftbfs.BuildBatch(batchG, reqs, ftbfs.WithBatchWorkers(workers))
		if err != nil {
			t.Fatalf("BuildBatch(workers=%d): %v", workers, err)
		}
		for i, st := range sts {
			if st.Source() != reqs[i].Source || st.Epsilon() != reqs[i].Eps {
				t.Fatalf("workers=%d: result %d is for (%d, %g), want (%d, %g)",
					workers, i, st.Source(), st.Epsilon(), reqs[i].Source, reqs[i].Eps)
			}
			if got := save(st); got != want[i] {
				t.Fatalf("workers=%d: request %d not byte-identical to sequential Build", workers, i)
			}
			if err := st.Verify(); err != nil {
				t.Fatalf("workers=%d: request %d: %v", workers, i, err)
			}
		}
	}
}

func TestBuildBatchErrors(t *testing.T) {
	g := ringWithChords(20)
	if _, err := ftbfs.BuildBatch(g, []ftbfs.BatchRequest{{Source: -1, Eps: 0.3}}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := ftbfs.BuildBatch(g, []ftbfs.BatchRequest{{Source: 0, Eps: -0.1}}); err == nil {
		t.Fatal("negative ε accepted")
	}
	sts, err := ftbfs.BuildBatch(g, nil)
	if err != nil || len(sts) != 0 {
		t.Fatalf("empty batch: got (%v, %v)", sts, err)
	}
}

func TestBuildBatchFreezesGraph(t *testing.T) {
	g := ringWithChords(15)
	if _, err := ftbfs.BuildBatch(g, []ftbfs.BatchRequest{{Source: 0, Eps: 0.3}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Fatal("graph not frozen by BuildBatch")
	}
}
