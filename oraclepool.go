package ftbfs

import "sync"

// OraclePool hands out per-goroutine Oracles for one structure. Oracles are
// not concurrency-safe (each owns a BFS scratch), so a concurrent server
// checks one out per request and returns it afterwards; the pool recycles
// scratch buffers instead of allocating a fresh oracle per query. All oracles
// of a pool share the structure's cached intact distance vector.
//
// The pool is backed by sync.Pool: idle oracles may be dropped under memory
// pressure and are recreated transparently.
type OraclePool struct {
	s *Structure
	p sync.Pool
}

// OraclePool returns the structure's oracle pool. The pool is created on the
// first call and shared by subsequent calls, so concurrent users of one
// structure recycle the same oracles.
func (s *Structure) OraclePool() *OraclePool {
	s.poolOnce.Do(func() {
		s.pool = &OraclePool{s: s}
		s.pool.p.New = func() any { return s.Oracle() }
	})
	return s.pool
}

// Get checks an oracle out of the pool, allocating one if the pool is empty.
// Return it with Put when the query burst is done.
func (p *OraclePool) Get() *Oracle { return p.p.Get().(*Oracle) }

// Put returns an oracle to the pool, folding its plan-path counts into the
// process-wide totals. Only oracles of the pool's own structure are
// accepted; foreign oracles are dropped (their scratch is sized for a
// different graph).
func (p *OraclePool) Put(o *Oracle) {
	if o == nil || o.st != p.s {
		return
	}
	flushPlanCounts(&planEdgeHits, &planEdgeRepairs, &o.planHits, &o.planRepairs)
	p.p.Put(o)
}

// Do checks out an oracle, runs f with it, and returns it to the pool. The
// oracle must not escape f.
func (p *OraclePool) Do(f func(*Oracle) error) error {
	o := p.Get()
	defer p.Put(o)
	return f(o)
}
