package ftbfs

import (
	"ftbfs/internal/simulate"
)

// FailureReport aggregates a failure-simulation campaign; see
// SimulateFailures.
type FailureReport struct {
	Failures       int   // distinct single-edge failures simulated
	Probes         int   // (failure, target) distance probes
	Violations     int   // probes where the contract was broken (0 expected)
	Disconnections int   // probes whose target the failure cut off entirely
	Impact         []int // histogram of distance increases caused by failures
	MaxImpact      int
}

// Clean reports whether the campaign found no contract violations.
func (r FailureReport) Clean() bool { return r.Violations == 0 }

// SimulateFailures fails every backup edge of the structure and probes
// distances through the survivors: probesPerFailure random targets per
// failure (0 = every vertex; seed drives the sampling). A valid structure
// always yields a Clean report; the impact histogram shows how much each
// failure lengthened true network distances.
func (s *Structure) SimulateFailures(probesPerFailure int, seed int64) (FailureReport, error) {
	rep, err := simulate.EdgeCampaign(s.st, probesPerFailure, seed)
	if err != nil {
		return FailureReport{}, err
	}
	return FailureReport{
		Failures:       rep.Failures,
		Probes:         rep.Probes,
		Violations:     rep.Violations,
		Disconnections: rep.Disconnections,
		Impact:         rep.Impact,
		MaxImpact:      rep.MaxImpact,
	}, nil
}
