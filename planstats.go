package ftbfs

import "ftbfs/internal/telemetry"

// Process-wide query-plan path totals: how many failure queries were
// answered O(1) from the cached intact vector (hits) vs through a subtree
// repair search. Oracles count in plain per-oracle fields — the plan query
// path is ~30 ns and must not pay an atomic op — and the pools fold those
// into these totals when an oracle is checked back in, i.e. once per
// served request rather than once per query. Direct (non-pooled) oracle
// users such as benchmarks never flush and never pay. The counters are
// standalone telemetry.Counter values (not registered here — this package
// must not depend on any registry); serving layers adopt them as
// CounterFuncs via PlanQueryCounts.
var (
	planEdgeHits      telemetry.Counter
	planEdgeRepairs   telemetry.Counter
	planVertexHits    telemetry.Counter
	planVertexRepairs telemetry.Counter
)

// flushPlanCounts folds an oracle's plan-path counts into the shared
// totals and resets them.
func flushPlanCounts(hits, repairs *telemetry.Counter, oHits, oRepairs *uint64) {
	if *oHits != 0 {
		hits.Add(*oHits)
		*oHits = 0
	}
	if *oRepairs != 0 {
		repairs.Add(*oRepairs)
		*oRepairs = 0
	}
}

// PlanQueryCounts returns the process-wide plan-path totals: edge-failure
// and vertex-failure queries answered from the intact vector (plan hits)
// vs through a repair run. Serving layers register these as telemetry
// counter funcs; the numbers cover every pooled oracle in the process.
func PlanQueryCounts() (edgeHits, edgeRepairs, vertexHits, vertexRepairs uint64) {
	return planEdgeHits.Value(), planEdgeRepairs.Value(),
		planVertexHits.Value(), planVertexRepairs.Value()
}
