package ftbfs

import "sync/atomic"

// Process-wide query-plan path totals: how many failure queries were
// answered O(1) from the cached intact vector (hits) vs through a subtree
// repair search. Oracles count in plain per-oracle fields — the plan query
// path is ~30 ns and must not pay an atomic op — and the pools fold those
// into these totals when an oracle is checked back in, i.e. once per
// served request rather than once per query. Direct (non-pooled) oracle
// users such as benchmarks never flush and never pay.
var (
	planEdgeHits      atomic.Uint64
	planEdgeRepairs   atomic.Uint64
	planVertexHits    atomic.Uint64
	planVertexRepairs atomic.Uint64
)

// flushPlanCounts folds an oracle's plan-path counts into the shared
// totals and resets them.
func flushPlanCounts(hits, repairs *atomic.Uint64, oHits, oRepairs *uint64) {
	if *oHits != 0 {
		hits.Add(*oHits)
		*oHits = 0
	}
	if *oRepairs != 0 {
		repairs.Add(*oRepairs)
		*oRepairs = 0
	}
}

// PlanQueryCounts returns the process-wide plan-path totals: edge-failure
// and vertex-failure queries answered from the intact vector (plan hits)
// vs through a repair run. Serving layers register these as telemetry
// counter funcs; the numbers cover every pooled oracle in the process.
func PlanQueryCounts() (edgeHits, edgeRepairs, vertexHits, vertexRepairs uint64) {
	return planEdgeHits.Load(), planEdgeRepairs.Load(),
		planVertexHits.Load(), planVertexRepairs.Load()
}
