// Command metriclint fails CI when a serving-plane package grows a new
// ad-hoc counter outside internal/telemetry.
//
// The serving layers used to keep hand-rolled atomic counters and expose
// them via bespoke /stats fields; those all migrated onto
// internal/telemetry's registry, which is the only way a number reaches
// /metrics, /metrics/fleet, and the merged fleet histograms. A fresh
// `atomic.Uint64` tally (or any expvar use) in server/cluster/store/chaos
// code silently reopens the split: the counter works locally but is
// invisible to exposition and merge. This lint is deliberately grep-grade —
// it flags declarations of atomic integer types and any expvar reference in
// non-test files of the serving packages, minus a named allowlist of
// protocol/control state that is legitimately not a metric.
//
// To add a new counter: use telemetry.Registry (Counter/Gauge/Histogram or
// CounterFunc over existing state). To keep a genuinely non-metric atomic
// (sequence numbers, breaker state, queue depth feeding a GaugeFunc), add it
// to the allowlist below with a one-line justification.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// scanDirs are the serving-plane packages where a bare counter is a bug.
// internal/telemetry itself is the one place atomics are the point. "." is
// the root ftbfs package (scanned non-recursively): its process-wide plan
// counters live on telemetry.Counter since the planstats migration, and a
// fresh atomic there would be just as invisible to exposition.
var scanDirs = []string{
	".",
	"internal/server",
	"internal/cluster",
	"internal/store",
	"internal/chaos",
	"internal/wire",
}

// allowlist maps "path:identifier" to why that atomic is not a metric.
var allowlist = map[string]string{
	"internal/server/server.go:queued":             "work-queue depth; exposed through a telemetry GaugeFunc",
	"internal/server/server.go:answered":           "local batch bookkeeping inside one request",
	"internal/wire/client.go:ids":                  "frame-ID sequence, protocol state",
	"internal/wire/client.go:next":                 "connection round-robin cursor",
	"internal/wire/client.go:wpend":                "write-mutex waiter count, flush coalescing",
	"internal/cluster/membership.go:probeFailures": "breaker input; exposed through breakerSnapshot + CounterFunc",
	"internal/cluster/membership.go:reqFailures":   "breaker input; exposed through breakerSnapshot + CounterFunc",
	"internal/cluster/membership.go:probes":        "breaker input; exposed through breakerSnapshot + CounterFunc",
	"internal/cluster/router.go:pointSeq":          "trace-sampling sequence, not exposed",
}

var (
	// A field or var declaration of an atomic integer: "name atomic.Uint64",
	// "var name atomic.Int64", "name *atomic.Uint32", ...
	atomicDecl = regexp.MustCompile(`^\s*(?:var\s+)?([A-Za-z_][A-Za-z0-9_]*)\s+\*?atomic\.(?:Uint64|Int64|Uint32|Int32)\b`)
	expvarUse  = regexp.MustCompile(`\bexpvar\.`)
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	bad := 0
	for _, dir := range scanDirs {
		base := filepath.Join(root, dir)
		err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				// "." means the root package only; its subdirectories are
				// either listed explicitly or out of scope (tools, testdata).
				if dir == "." && path != base {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(root, path)
			rel = filepath.ToSlash(rel)
			for i, line := range strings.Split(string(raw), "\n") {
				if idx := strings.Index(line, "//"); idx >= 0 {
					line = line[:idx]
				}
				if expvarUse.MatchString(line) {
					fmt.Fprintf(os.Stderr, "%s:%d: expvar use outside internal/telemetry; register on the telemetry.Registry instead\n", rel, i+1)
					bad++
					continue
				}
				m := atomicDecl.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				if why, ok := allowlist[rel+":"+m[1]]; ok {
					_ = why
					continue
				}
				fmt.Fprintf(os.Stderr, "%s:%d: ad-hoc atomic counter %q outside internal/telemetry; use telemetry.Counter/Gauge/Histogram (or add to tools/metriclint allowlist with a justification)\n", rel, i+1, m[1])
				bad++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d finding(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("metriclint: serving-plane counters all live on internal/telemetry")
}
