// Benchguard compares two Go benchmark result files and fails (exit 1) when
// any benchmark matching a filter regressed by more than a threshold in
// ns/op or allocs/op. CI uses it to gate PRs on the serving and batch-build
// hot paths: the baseline is the previous run's BENCH_latest.json artifact,
// falling back to the committed BENCH_baseline.json.
//
// Both inputs may be either raw `go test -bench` text or the `go test -json`
// stream (benchmark lines are extracted from the Output events). Repeated
// measurements of one benchmark (-count > 1) are reduced to their MINIMUM:
// scheduler and shared-runner noise is one-sided (it only ever makes code
// look slower), so min-of-N is far more stable across CI runs than the mean.
// Run the gated benchmarks with -count 3 or more. The -<procs> suffix of
// parallel benchmarks is stripped so runs from machines with different core
// counts stay comparable.
//
// Usage:
//
//	benchguard -baseline OLD -latest NEW [-threshold 0.20]
//	           [-filter REGEXP] [-allow-missing-baseline]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result accumulates the measurements of one benchmark.
type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
	count       int
}

// benchLine matches a standard benchmark result line:
//
//	BenchmarkName-8  	     100	  10093 ns/op	  32 B/op	  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.eE+]+) ns/op(.*)$`)

// procsSuffix strips the trailing -<GOMAXPROCS> from a benchmark name.
var procsSuffix = regexp.MustCompile(`-\d+$`)

var allocsField = regexp.MustCompile(`([0-9.eE+]+) allocs/op`)

// nameOnly matches a benchmark name printed without measurements — the
// `go test -json` stream often emits the name and the result columns as
// separate Output events.
var nameOnly = regexp.MustCompile(`^(Benchmark\S+)\s*$`)

// resultOnly matches the measurement columns arriving in their own event.
var resultOnly = regexp.MustCompile(`^\d+\s+([0-9.eE+]+) ns/op(.*)$`)

// parseFile reads benchmark results from raw bench text or a go test -json
// stream, averaging repeated measurements per benchmark.
func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]*result)
	pending := "" // benchmark name seen without measurements yet
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		line = strings.TrimSpace(line)
		switch {
		case benchLine.MatchString(line):
			m := benchLine.FindStringSubmatch(line)
			record(out, m[1], m[2], m[3])
			pending = ""
		case nameOnly.MatchString(line):
			pending = nameOnly.FindStringSubmatch(line)[1]
		case pending != "" && resultOnly.MatchString(line):
			m := resultOnly.FindStringSubmatch(line)
			record(out, pending, m[1], m[2])
			pending = ""
		}
	}
	return out, sc.Err()
}

// record folds one benchmark measurement into the accumulator.
func record(out map[string]*result, name, nsField, rest string) {
	name = procsSuffix.ReplaceAllString(name, "")
	ns, err := strconv.ParseFloat(nsField, 64)
	if err != nil {
		return
	}
	r := out[name]
	if r == nil {
		r = &result{}
		out[name] = r
	}
	// Keep the minimum of repeated -count measurements: noise only slows
	// benchmarks down, so the min is the best estimate of the true cost.
	if r.count == 0 || ns < r.nsPerOp {
		r.nsPerOp = ns
	}
	if am := allocsField.FindStringSubmatch(rest); am != nil {
		if allocs, err := strconv.ParseFloat(am[1], 64); err == nil {
			if !r.hasAllocs || allocs < r.allocsPerOp {
				r.allocsPerOp = allocs
			}
			r.hasAllocs = true
		}
	}
	r.count++
}

// regression describes one metric that got worse than the threshold.
type regression struct {
	name, metric string
	old, new     float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)",
		r.name, r.metric, r.old, r.new, 100*(r.new/r.old-1))
}

// compare returns the regressions beyond threshold among benchmarks present
// in both maps and matching filter, plus the gated baseline benchmarks that
// vanished from latest — a renamed or deleted benchmark must fail the gate,
// not silently stop being checked. With allocsOnly, ns/op is reported but
// not gated (wall-clock is meaningless across different hardware).
func compare(baseline, latest map[string]*result, filter *regexp.Regexp, threshold float64, allocsOnly bool) (regs []regression, compared, missing []string) {
	names := make([]string, 0, len(latest))
	for name := range latest {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !filter.MatchString(name) {
			continue
		}
		base, ok := baseline[name]
		if !ok {
			continue
		}
		cur := latest[name]
		compared = append(compared, name)
		if !allocsOnly && base.nsPerOp > 0 && cur.nsPerOp > base.nsPerOp*(1+threshold) {
			regs = append(regs, regression{name, "ns/op", base.nsPerOp, cur.nsPerOp})
		}
		if base.hasAllocs && cur.hasAllocs {
			switch {
			case base.allocsPerOp > 0 && cur.allocsPerOp > base.allocsPerOp*(1+threshold):
				regs = append(regs, regression{name, "allocs/op", base.allocsPerOp, cur.allocsPerOp})
			case base.allocsPerOp == 0 && cur.allocsPerOp > 0:
				// A formerly allocation-free path started allocating: always
				// a regression, no ratio exists.
				regs = append(regs, regression{name, "allocs/op", 0, cur.allocsPerOp})
			}
		}
	}
	baseNames := make([]string, 0, len(baseline))
	for name := range baseline {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if filter.MatchString(name) {
			if _, ok := latest[name]; !ok {
				missing = append(missing, name)
			}
		}
	}
	return regs, compared, missing
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline benchmark results (bench text or go test -json)")
	latestPath := flag.String("latest", "", "latest benchmark results (bench text or go test -json)")
	threshold := flag.Float64("threshold", 0.20, "relative regression tolerance (0.20 = +20%)")
	filterSpec := flag.String("filter", "BenchmarkServeQueries|BenchmarkOraclePool|BenchmarkBuildBatch|BenchmarkQueryPlan|BenchmarkClusterRoute|BenchmarkVertexQuery|BenchmarkWireServe|BenchmarkSlabLoad",
		"regexp of benchmark names to gate on")
	allowMissing := flag.Bool("allow-missing-baseline", false, "exit 0 when the baseline file does not exist")
	allocsOnly := flag.Bool("allocs-only", false,
		"gate only on allocs/op (use when baseline and latest ran on different hardware)")
	flag.Parse()
	if *baselinePath == "" || *latestPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -latest are required")
		os.Exit(2)
	}
	filter, err := regexp.Compile(*filterSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: bad -filter: %v\n", err)
		os.Exit(2)
	}
	if _, err := os.Stat(*baselinePath); os.IsNotExist(err) && *allowMissing {
		fmt.Printf("benchguard: no baseline at %s; passing\n", *baselinePath)
		return
	}
	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	latest, err := parseFile(*latestPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if len(latest) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no benchmark results in %s\n", *latestPath)
		os.Exit(2)
	}
	regs, compared, missing := compare(baseline, latest, filter, *threshold, *allocsOnly)
	mode := ""
	if *allocsOnly {
		mode = ", allocs/op only"
	}
	fmt.Printf("benchguard: compared %d benchmarks against %s (threshold +%.0f%%%s)\n",
		len(compared), *baselinePath, *threshold*100, mode)
	for _, name := range compared {
		b, l := baseline[name], latest[name]
		fmt.Printf("  %-50s %12.1f -> %12.1f ns/op", name, b.nsPerOp, l.nsPerOp)
		if b.hasAllocs && l.hasAllocs {
			fmt.Printf("   %8.1f -> %8.1f allocs/op", b.allocsPerOp, l.allocsPerOp)
		}
		fmt.Println()
	}
	if len(compared) == 0 {
		fmt.Println("benchguard: warning: nothing to compare (baseline/filter mismatch)")
	}
	if len(missing) > 0 {
		fmt.Printf("benchguard: %d gated benchmark(s) vanished from the latest run:\n", len(missing))
		for _, name := range missing {
			fmt.Printf("  MISSING %s (renamed or deleted? update the baseline/filter deliberately)\n", name)
		}
		os.Exit(1)
	}
	if len(regs) > 0 {
		fmt.Printf("benchguard: %d regression(s) beyond +%.0f%%:\n", len(regs), *threshold*100)
		for _, r := range regs {
			fmt.Printf("  REGRESSION %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}
