package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const rawBench = `goos: linux
BenchmarkOraclePool/pooled-8         	      10	     10000 ns/op	      32 B/op	       0 allocs/op
BenchmarkOraclePool/pooled-8         	      10	     12000 ns/op	      32 B/op	       0 allocs/op
BenchmarkServeQueries/dist-avoiding-8	      10	     50000 ns/op	    6703 B/op	      83 allocs/op
BenchmarkBFSTree-8                   	     100	    900000 ns/op
PASS
`

const jsonBench = `{"Action":"output","Package":"ftbfs","Output":"BenchmarkOraclePool/pooled-4 \t 20\t 11000 ns/op\t 32 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"ftbfs","Output":"BenchmarkServeQueries/dist-avoiding-4 \t 20\t 80000 ns/op\t 7000 B/op\t 120 allocs/op\n"}
{"Action":"output","Package":"ftbfs","Output":"ok  \tftbfs\t1.2s\n"}
`

// test2json often splits a benchmark's name and measurements into separate
// Output events; the parser must stitch them back together.
const jsonBenchSplit = `{"Action":"output","Package":"ftbfs","Output":"BenchmarkOraclePool/pooled\n"}
{"Action":"output","Package":"ftbfs","Output":"BenchmarkOraclePool/pooled-4 \t"}
{"Action":"output","Package":"ftbfs","Output":"      20\t 13000 ns/op\t 32 B/op\t 2 allocs/op\n"}
{"Action":"output","Package":"ftbfs","Output":"ok  \tftbfs\t1.2s\n"}
`

func TestParseSplitJSONEvents(t *testing.T) {
	js, err := parseFile(writeTemp(t, "split.json", jsonBenchSplit))
	if err != nil {
		t.Fatal(err)
	}
	got := js["BenchmarkOraclePool/pooled"]
	if got == nil || got.nsPerOp != 13000 || got.allocsPerOp != 2 || got.count != 1 {
		t.Fatalf("split events misparsed: %+v", got)
	}
}

func TestParseRawAndJSON(t *testing.T) {
	raw, err := parseFile(writeTemp(t, "raw.txt", rawBench))
	if err != nil {
		t.Fatal(err)
	}
	pooled, ok := raw["BenchmarkOraclePool/pooled"]
	if !ok {
		t.Fatalf("procs suffix not stripped: %v", raw)
	}
	if pooled.nsPerOp != 10000 || pooled.count != 2 {
		t.Fatalf("repeated measurements not reduced to their minimum: %+v", pooled)
	}
	if bt := raw["BenchmarkBFSTree"]; bt == nil || bt.hasAllocs {
		t.Fatalf("ns-only line misparsed: %+v", bt)
	}

	js, err := parseFile(writeTemp(t, "out.json", jsonBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := js["BenchmarkOraclePool/pooled"]; got == nil || got.nsPerOp != 11000 || got.allocsPerOp != 0 {
		t.Fatalf("json stream misparsed: %+v", got)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline, err := parseFile(writeTemp(t, "base.txt", rawBench))
	if err != nil {
		t.Fatal(err)
	}
	latest, err := parseFile(writeTemp(t, "latest.json", jsonBench))
	if err != nil {
		t.Fatal(err)
	}
	filter := regexp.MustCompile("BenchmarkServeQueries|BenchmarkOraclePool")

	// dist-avoiding went 50000 → 80000 ns/op (+60%) and 83 → 120 allocs/op
	// (+45%): two regressions at a 20% threshold.
	regs, compared, missing := compare(baseline, latest, filter, 0.20, false)
	if len(compared) != 2 {
		t.Fatalf("compared %v, want both serving benchmarks", compared)
	}
	if len(missing) != 0 {
		t.Fatalf("spurious missing benchmarks %v", missing)
	}
	if len(regs) != 2 {
		t.Fatalf("got regressions %v, want ns/op + allocs/op of dist-avoiding", regs)
	}
	for _, r := range regs {
		if r.name != "BenchmarkServeQueries/dist-avoiding" {
			t.Fatalf("unexpected regression %v", r)
		}
	}

	// allocs-only mode drops the ns/op half of the gate.
	regs, _, _ = compare(baseline, latest, filter, 0.20, true)
	if len(regs) != 1 || regs[0].metric != "allocs/op" {
		t.Fatalf("allocs-only kept ns/op regressions: %v", regs)
	}

	// At a 100% threshold nothing regresses.
	if regs, _, _ := compare(baseline, latest, filter, 1.0, false); len(regs) != 0 {
		t.Fatalf("threshold ignored: %v", regs)
	}

	// A formerly allocation-free benchmark starting to allocate always fails.
	latest["BenchmarkOraclePool/pooled"].allocsPerOp = 3
	regs, _, _ = compare(baseline, latest, filter, 0.20, false)
	found := false
	for _, r := range regs {
		if r.name == "BenchmarkOraclePool/pooled" && r.metric == "allocs/op" {
			found = true
		}
	}
	if !found {
		t.Fatalf("0→3 allocs/op not flagged: %v", regs)
	}

	// Benchmarks missing from the baseline are skipped, not failed.
	delete(baseline, "BenchmarkServeQueries/dist-avoiding")
	if _, compared, _ := compare(baseline, latest, filter, 0.20, false); len(compared) != 1 {
		t.Fatalf("missing-baseline benchmark not skipped: %v", compared)
	}

	// A gated benchmark vanishing from the latest run must be reported: a
	// rename or deletion may not silently bypass the gate.
	delete(latest, "BenchmarkOraclePool/pooled")
	if _, _, missing := compare(baseline, latest, filter, 0.20, false); len(missing) != 1 ||
		missing[0] != "BenchmarkOraclePool/pooled" {
		t.Fatalf("vanished benchmark not reported: %v", missing)
	}
}
