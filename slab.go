package ftbfs

import (
	"fmt"
	"io"

	"ftbfs/internal/bfs"
	"ftbfs/internal/core"
	"ftbfs/internal/graph"
	"ftbfs/internal/tree"
	"ftbfs/internal/vertexft"
)

// SaveSlab serialises the structure as a version-3 binary record: the edge
// sets plus the fully materialized query plan (H's CSR, the intact distance
// vector, H's canonical BFS tree in BFS order), stored as flat little-endian
// slabs. Loading such a record skips text parsing, endpoint re-binding and
// every BFS pass — see LoadStructure, which sniffs the format. The plan is
// built first if the structure has never served a query.
func (s *Structure) SaveSlab(w io.Writer) error {
	alg, err := core.ParseAlgorithm(s.st.Stats.Algorithm)
	if err != nil {
		return fmt.Errorf("ftbfs: slab save: %w", err)
	}
	p := s.Plan()
	return core.EncodeSlab(w, s.st.G, &core.SlabRecord{
		Model:      core.SlabEdge,
		S:          s.st.S,
		Eps:        s.st.Eps,
		Alg:        alg,
		Gen:        s.st.G.Generation(),
		Edges:      s.st.Edges,
		Reinforced: s.st.Reinforced,
		TreeEdges:  s.st.TreeEdges,
		Intact:     p.intact,
		RowStart:   p.h.RowStart,
		Arcs:       p.h.Arcs,
		Parent:     p.t.Parent,
		ParentEdge: p.t.ParentEdge,
		Order:      p.t.Order(),
	})
}

// SaveSlab serialises the vertex structure as a version-3 binary record; the
// vertex model stores no ε/algorithm/reinforcement dimension, mirroring the
// version-2 text record. See Structure.SaveSlab.
func (s *VertexStructure) SaveSlab(w io.Writer) error {
	p := s.Plan()
	return core.EncodeSlab(w, s.st.G, &core.SlabRecord{
		Model:      core.SlabVertex,
		S:          s.st.S,
		Pairs:      s.st.Pairs,
		Gen:        s.st.G.Generation(),
		Edges:      s.st.Edges,
		Intact:     p.intact,
		RowStart:   p.h.RowStart,
		Arcs:       p.h.Arcs,
		Parent:     p.t.Parent,
		ParentEdge: p.t.ParentEdge,
		Order:      p.t.Order(),
	})
}

// slabTree reassembles the canonical BFS tree of H from a decoded record.
// BuildAncestry is a linear pass over arrays the decoder already validated —
// no search runs anywhere on the slab load path.
func slabTree(g *graph.Graph, rec *core.SlabRecord) *tree.Tree {
	return tree.BuildAncestry(g.N(), &bfs.Tree{
		Source:     int32(rec.S),
		Dist:       rec.Intact,
		Parent:     rec.Parent,
		ParentEdge: rec.ParentEdge,
		Order:      rec.Order,
	})
}

// slabStructure assembles a serving-ready edge structure from a decoded
// binary record: the query plan and intact vector are installed directly, so
// the first query after a load-through pays nothing.
func slabStructure(g *graph.Graph, rec *core.SlabRecord) (*Structure, error) {
	if rec.Model != core.SlabEdge {
		return nil, fmt.Errorf("ftbfs: record is a vertex structure (load it with LoadVertexStructure)")
	}
	h, err := graph.NewCSR(g.N(), rec.RowStart, rec.Arcs)
	if err != nil {
		return nil, err
	}
	h.Gen = rec.Gen // the decoder verified rec.Gen == g.Generation()
	cs := &core.Structure{
		G:          g,
		S:          rec.S,
		Eps:        rec.Eps,
		Edges:      rec.Edges,
		Reinforced: rec.Reinforced,
		TreeEdges:  rec.TreeEdges,
	}
	cs.Stats.Algorithm = rec.Alg.String()
	p := &QueryPlan{
		h:         h,
		intact:    rec.Intact,
		t:         slabTree(g, rec),
		edgeChild: make([]int32, g.M()),
	}
	for id := range p.edgeChild {
		p.edgeChild[id] = -1
	}
	for _, v := range rec.Order {
		if id := rec.ParentEdge[v]; id != graph.NoEdge {
			p.edgeChild[id] = v
		}
	}
	s := &Structure{st: cs}
	s.intactOnce.Do(func() { s.intactDist = rec.Intact })
	s.planOnce.Do(func() { s.qplan = p })
	return s, nil
}

// slabVertexStructure is slabStructure for the vertex model.
func slabVertexStructure(g *graph.Graph, rec *core.SlabRecord) (*VertexStructure, error) {
	if rec.Model != core.SlabVertex {
		return nil, fmt.Errorf("ftbfs: record is an edge structure (load it with LoadStructure)")
	}
	h, err := graph.NewCSR(g.N(), rec.RowStart, rec.Arcs)
	if err != nil {
		return nil, err
	}
	h.Gen = rec.Gen // the decoder verified rec.Gen == g.Generation()
	s := &VertexStructure{st: &vertexft.Structure{G: g, S: rec.S, Edges: rec.Edges, Pairs: rec.Pairs}}
	s.intactOnce.Do(func() { s.intactDist = rec.Intact })
	s.planOnce.Do(func() {
		s.qplan = &VertexQueryPlan{h: h, intact: rec.Intact, t: slabTree(g, rec)}
	})
	return s, nil
}
