// Quickstart: build a fault-tolerant BFS structure over a small mesh
// network, inspect the backup/reinforced split, and simulate a failure with
// the oracle.
package main

import (
	"fmt"
	"log"

	"ftbfs"
)

func main() {
	// A 4×4 grid network with a few express links.
	const side = 4
	g := ftbfs.NewGraph(side * side)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.MustAddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < side {
				g.MustAddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	g.MustAddEdge(at(0, 0), at(3, 3)) // express link
	g.MustAddEdge(at(0, 3), at(3, 0))

	// Build the structure from the top-left corner with ε = 0.25.
	st, err := ftbfs.Build(g, at(0, 0), 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st)
	fmt.Printf("backup edges: %d, reinforced edges: %d (of %d graph edges)\n",
		st.BackupCount(), st.ReinforcedCount(), g.M())

	// The contract: after any single backup-edge failure, every
	// source-to-node distance in the surviving structure matches the
	// distance in the surviving network.
	if err := st.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: distances survive every single backup-edge failure")

	// Simulate a failure of the first backup edge and compare distances.
	oracle := st.Oracle()
	for _, e := range st.Edges() {
		if st.IsReinforced(e[0], e[1]) {
			continue
		}
		target := at(3, 3)
		inH, err := oracle.DistAvoiding(target, e[0], e[1])
		if err != nil {
			log.Fatal(err)
		}
		inG, err := oracle.BaselineDistAvoiding(target, e[0], e[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failure of {%d,%d}: dist(source, %d) = %d in H, %d in full network\n",
			e[0], e[1], target, inH, inG)
		break
	}
}
