// Costplanner: a rent-or-buy style planning session. Given per-edge prices
// for fault-prone backup links and fail-proof reinforced links, sweep the
// tradeoff parameter ε and pick the cheapest deployment — and compare the
// measured optimum with the paper's closed-form prediction
// ε* ≈ log(R/B) / (2 log n).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"ftbfs"
)

func main() {
	// A metro network: ring backbone, two data-center meshes, random
	// access links.
	rng := rand.New(rand.NewSource(7))
	const n = 120
	g := ftbfs.NewGraph(n)
	for i := 0; i < 40; i++ { // backbone ring
		g.MustAddEdge(i, (i+1)%40)
	}
	for dc := 0; dc < 2; dc++ { // two meshes of 20 hanging off the ring
		base := 40 + dc*20
		for i := 0; i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if rng.Float64() < 0.3 {
					g.MustAddEdge(base+i, base+j)
				}
			}
		}
		g.MustAddEdge(dc*17, base) // uplink
		g.MustAddEdge(dc*17+5, base+1)
	}
	for v := 80; v < n; v++ { // access nodes
		g.MustAddEdge(v, rng.Intn(40))
		g.MustAddEdge(v, rng.Intn(v))
	}

	const source = 0
	for _, prices := range [][2]float64{{1, 5}, {1, 40}, {1, 400}} {
		backupPrice, reinforcePrice := prices[0], prices[1]
		points, best, err := ftbfs.SweepCost(g, source, nil, backupPrice, reinforcePrice)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prices: backup=%.0f reinforced=%.0f (R/B=%.0f)\n",
			backupPrice, reinforcePrice, reinforcePrice/backupPrice)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  eps\tbackup\treinforced\tcost\t")
		for i, p := range points {
			mark := ""
			if i == best {
				mark = "← cheapest"
			}
			fmt.Fprintf(w, "  %.3f\t%d\t%d\t%.0f\t%s\n", p.Eps, p.Backup, p.Reinforced, p.Cost, mark)
		}
		w.Flush()
		fmt.Printf("  paper's prediction: ε* ≈ %.3f\n\n",
			ftbfs.PredictOptimalEpsilon(g.N(), backupPrice, reinforcePrice))
	}
}
