// Multisource: protect BFS distances from several data centers at once
// (the FT-MBFS setting), and show the sublinear growth of the union
// structure compared to independent per-source deployments.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftbfs"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const n = 150
	build := func() *ftbfs.Graph {
		r := rand.New(rand.NewSource(3))
		g := ftbfs.NewGraph(n)
		for i := 1; i < n; i++ {
			g.MustAddEdge(i, r.Intn(i))
		}
		for k := 0; k < 3*n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		return g
	}
	_ = rng

	sources := []int{0, 50, 100}
	const eps = 0.25

	// independent deployments
	total := 0
	for _, s := range sources {
		st, err := ftbfs.Build(build(), s, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("source %3d alone: |H|=%d (backup %d, reinforced %d)\n",
			s, st.Size(), st.BackupCount(), st.ReinforcedCount())
		total += st.Size()
	}

	// one shared FT-MBFS structure
	ms, err := ftbfs.BuildMulti(build(), sources, eps)
	if err != nil {
		log.Fatal(err)
	}
	if err := ms.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared FT-MBFS:  |H|=%d (backup %d, reinforced %d)\n",
		ms.Size(), ms.BackupCount(), ms.ReinforcedCount())
	fmt.Printf("independent sum: %d edges → sharing saves %d edges (%.0f%%)\n",
		total, total-ms.Size(), 100*float64(total-ms.Size())/float64(total))
}
