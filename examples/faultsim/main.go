// Faultsim: stress the FT-BFS guarantee operationally. Build a structure,
// then fail every backup edge in turn (and random batches of probes) and
// check, via the oracle, that every surviving distance matches a fresh BFS
// on the damaged network. This is the library's own verifier exercised the
// way a monitoring system would.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftbfs"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	const n = 200
	g := ftbfs.NewGraph(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i))
	}
	for k := 0; k < 4*n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}

	const source = 0
	st, err := ftbfs.Build(g, source, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st)

	oracle := st.Oracle()
	edges := st.Edges()
	failures, probes, worstStretch := 0, 0, 0
	for _, e := range edges {
		if st.IsReinforced(e[0], e[1]) {
			continue
		}
		failures++
		for t := 0; t < 10; t++ {
			v := rng.Intn(n)
			inH, err := oracle.DistAvoiding(v, e[0], e[1])
			if err != nil {
				log.Fatal(err)
			}
			inG, err := oracle.BaselineDistAvoiding(v, e[0], e[1])
			if err != nil {
				log.Fatal(err)
			}
			probes++
			if inG == ftbfs.Unreachable {
				continue
			}
			if inH == ftbfs.Unreachable || inH > inG {
				log.Fatalf("CONTRACT BROKEN: failure {%d,%d}, vertex %d: %d in H vs %d in G",
					e[0], e[1], v, inH, inG)
			}
			base, err := oracle.BaselineDistAvoiding(v, e[0], e[1])
			if err != nil {
				log.Fatal(err)
			}
			if d := base - inH; d > worstStretch {
				worstStretch = d
			}
		}
	}
	fmt.Printf("simulated %d single-edge failures, %d distance probes: contract held on all\n",
		failures, probes)
	fmt.Printf("(structure distance never exceeded the damaged-network distance; max slack %d)\n", worstStretch)
}
