// Tradeoff: sweep the ε parameter on an adversarial network and print the
// reinforcement-backup curve of Theorem 3.1 — few reinforced edges demand
// many backup edges and vice versa.
//
// The network mirrors the paper's lower-bound gadget (Fig. 10): fragile
// backbone paths whose j'th edge, when it fails, forces a distinct fan of
// exchange links. Escape paths have geometrically decreasing lengths
// (6 + 2(d−j)) so that exactly one escape is optimal per failure.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ftbfs"
)

const (
	copies   = 4  // independent backbone gadgets
	depth    = 8  // backbone length d
	exchange = 30 // exchange nodes per gadget (the fan width)
)

func buildNetwork() (*ftbfs.Graph, int) {
	perCopy := (depth + 1) + (depth*depth + 5*depth) + exchange
	g := ftbfs.NewGraph(1 + copies*perCopy)
	next := 1
	alloc := func(c int) []int {
		out := make([]int, c)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	for i := 0; i < copies; i++ {
		spine := alloc(depth + 1)
		g.MustAddEdge(0, spine[0])
		for j := 0; j+1 <= depth; j++ {
			g.MustAddEdge(spine[j], spine[j+1])
		}
		hubs := make([]int, depth)
		for j := 1; j <= depth; j++ {
			esc := alloc(6 + 2*(depth-j))
			prev := spine[j-1]
			for _, w := range esc {
				g.MustAddEdge(prev, w)
				prev = w
			}
			hubs[j-1] = prev
		}
		for _, x := range alloc(exchange) {
			g.MustAddEdge(spine[depth], x)
			for _, h := range hubs {
				g.MustAddEdge(x, h)
			}
		}
	}
	return g, 0
}

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "eps\t|H|\tbackup\treinforced\tcost(B=1,R=50)")
	for _, eps := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 1} {
		g, source := buildNetwork()
		st, err := ftbfs.Build(g, source, eps)
		if err != nil {
			log.Fatal(err)
		}
		if err := st.Verify(); err != nil {
			log.Fatalf("eps=%g: %v", eps, err)
		}
		fmt.Fprintf(w, "%.2f\t%d\t%d\t%d\t%.0f\n",
			eps, st.Size(), st.BackupCount(), st.ReinforcedCount(), st.Cost(1, 50))
	}
	w.Flush()
	fmt.Println("\nsmall ε → reinforce the backbone and buy few fans;")
	fmt.Println("large ε → buy the redundant fans and reinforce nothing")
}
