package ftbfs_test

import (
	"sync"
	"testing"

	"ftbfs"
)

// failableEdges returns the structure edges that are allowed to fail.
func failableEdges(st *ftbfs.Structure) [][2]int {
	var out [][2]int
	for _, e := range st.Edges() {
		if !st.IsReinforced(e[0], e[1]) {
			out = append(out, e)
		}
	}
	return out
}

func TestOracleDistCachedAcrossFailureQueries(t *testing.T) {
	g := randomGraph(60, 80, 11)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	want := make([]int, g.N())
	for v := range want {
		want[v] = o.Dist(v)
	}
	// Interleave failure queries, which reuse the oracle's scratch, then
	// re-read the intact distances: the cache must be unaffected.
	for _, e := range failableEdges(st)[:4] {
		if _, err := o.DistAvoiding(0, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for v := range want {
		if got := o.Dist(v); got != want[v] {
			t.Fatalf("Dist(%d) = %d after failure queries, want %d", v, got, want[v])
		}
	}
	// A second oracle of the same structure shares the cached vector.
	o2 := st.Oracle()
	for v := range want {
		if got := o2.Dist(v); got != want[v] {
			t.Fatalf("second oracle: Dist(%d) = %d, want %d", v, got, want[v])
		}
	}
}

func TestDistAvoidingManyMatchesSerial(t *testing.T) {
	g := randomGraph(80, 120, 5)
	st, err := ftbfs.Build(g, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	var queries []ftbfs.FailureQuery
	for i, e := range failableEdges(st) {
		queries = append(queries, ftbfs.FailureQuery{V: (i * 7) % g.N(), FailedU: e[0], FailedV: e[1]})
	}
	got, err := o.DistAvoidingMany(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := o.DistAvoiding(q.V, q.FailedU, q.FailedV)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("query %d (%+v): batched %d, serial %d", i, q, got[i], want)
		}
	}
}

func TestDistAvoidingManyRejectsBadQueries(t *testing.T) {
	g := ringWithChords(12)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	if _, err := o.DistAvoidingMany([]ftbfs.FailureQuery{{V: 1, FailedU: 0, FailedV: 5}}, nil); err == nil {
		t.Fatal("non-edge failure accepted")
	}
	if _, err := o.DistAvoidingMany([]ftbfs.FailureQuery{{V: -1, FailedU: 0, FailedV: 1}}, nil); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := o.DistAvoidingMany(make([]ftbfs.FailureQuery, 2), make([]int, 1)); err == nil {
		t.Fatal("mis-sized out accepted")
	}
}

func TestOraclePoolConcurrentMatchesSerial(t *testing.T) {
	g := randomGraph(100, 160, 23)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	edges := failableEdges(st)

	// Serial ground truth with a dedicated oracle.
	serial := st.Oracle()
	type q struct {
		v, fu, fv int
		want      int
	}
	var qs []q
	for i, e := range edges {
		v := (i * 13) % g.N()
		d, err := serial.DistAvoiding(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q{v, e[0], e[1], d})
	}

	if st.OraclePool() != st.OraclePool() {
		t.Fatal("OraclePool is not idempotent")
	}
	pool := st.OraclePool()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(qs)*4; i += 8 {
				qq := qs[i%len(qs)]
				err := pool.Do(func(o *ftbfs.Oracle) error {
					got, err := o.DistAvoiding(qq.v, qq.fu, qq.fv)
					if err != nil {
						return err
					}
					if got != qq.want {
						t.Errorf("concurrent DistAvoiding(%d,%d,%d) = %d, want %d", qq.v, qq.fu, qq.fv, got, qq.want)
					}
					if o.Dist(qq.v) < 0 {
						t.Errorf("negative intact distance")
					}
					return nil
				})
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
