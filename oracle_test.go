package ftbfs_test

import (
	"sync"
	"testing"

	"ftbfs"
)

// failableEdges returns the structure edges that are allowed to fail.
func failableEdges(st *ftbfs.Structure) [][2]int {
	var out [][2]int
	for _, e := range st.Edges() {
		if !st.IsReinforced(e[0], e[1]) {
			out = append(out, e)
		}
	}
	return out
}

func TestOracleDistCachedAcrossFailureQueries(t *testing.T) {
	g := randomGraph(60, 80, 11)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	want := make([]int, g.N())
	for v := range want {
		want[v] = o.Dist(v)
	}
	// Interleave failure queries, which reuse the oracle's scratch, then
	// re-read the intact distances: the cache must be unaffected.
	for _, e := range failableEdges(st)[:4] {
		if _, err := o.DistAvoiding(0, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for v := range want {
		if got := o.Dist(v); got != want[v] {
			t.Fatalf("Dist(%d) = %d after failure queries, want %d", v, got, want[v])
		}
	}
	// A second oracle of the same structure shares the cached vector.
	o2 := st.Oracle()
	for v := range want {
		if got := o2.Dist(v); got != want[v] {
			t.Fatalf("second oracle: Dist(%d) = %d, want %d", v, got, want[v])
		}
	}
}

func TestDistAvoidingManyMatchesSerial(t *testing.T) {
	g := randomGraph(80, 120, 5)
	st, err := ftbfs.Build(g, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	var queries []ftbfs.FailureQuery
	for i, e := range failableEdges(st) {
		queries = append(queries, ftbfs.FailureQuery{V: (i * 7) % g.N(), FailedU: e[0], FailedV: e[1]})
	}
	got, err := o.DistAvoidingMany(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := o.DistAvoiding(q.V, q.FailedU, q.FailedV)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("query %d (%+v): batched %d, serial %d", i, q, got[i], want)
		}
	}
}

func TestDistAvoidingManyRejectsBadQueries(t *testing.T) {
	g := ringWithChords(12)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	if _, err := o.DistAvoidingMany([]ftbfs.FailureQuery{{V: 1, FailedU: 0, FailedV: 5}}, nil); err == nil {
		t.Fatal("non-edge failure accepted")
	}
	if _, err := o.DistAvoidingMany([]ftbfs.FailureQuery{{V: -1, FailedU: 0, FailedV: 1}}, nil); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := o.DistAvoidingMany(make([]ftbfs.FailureQuery, 2), make([]int, 1)); err == nil {
		t.Fatal("mis-sized out accepted")
	}
}

func TestDistAvoidingEachPartialResults(t *testing.T) {
	g := randomGraph(80, 120, 5)
	st, err := ftbfs.Build(g, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	o := st.Oracle()
	edges := failableEdges(st)
	// Interleave valid queries with every class of invalid one.
	queries := []ftbfs.FailureQuery{
		{V: 3, FailedU: edges[0][0], FailedV: edges[0][1]},
		{V: -1, FailedU: edges[0][0], FailedV: edges[0][1]}, // bad target
		{V: 7, FailedU: edges[1][0], FailedV: edges[1][1]},
		{V: 9, FailedU: 0, FailedV: 0},                         // not an edge
		{V: g.N(), FailedU: edges[2][0], FailedV: edges[2][1]}, // bad target (high)
		{V: 11, FailedU: edges[2][0], FailedV: edges[2][1]},
	}
	dists, errs := o.DistAvoidingEach(queries, nil, nil)
	if len(dists) != len(queries) || len(errs) != len(queries) {
		t.Fatalf("got %d dists / %d errs for %d queries", len(dists), len(errs), len(queries))
	}
	for i, q := range queries {
		bad := i == 1 || i == 3 || i == 4
		if bad {
			if errs[i] == nil {
				t.Fatalf("query %d (%+v): invalid query got no error", i, q)
			}
			if dists[i] != ftbfs.Unreachable {
				t.Fatalf("query %d: errored slot holds dist %d, want Unreachable", i, dists[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("query %d (%+v): unexpected error %v", i, q, errs[i])
		}
		want, err := o.DistAvoiding(q.V, q.FailedU, q.FailedV)
		if err != nil {
			t.Fatal(err)
		}
		if dists[i] != want {
			t.Fatalf("query %d: got %d, want %d", i, dists[i], want)
		}
	}
	// A reinforced edge must be rejected per-slot too.
	for _, e := range st.ReinforcedEdges() {
		_, errs := o.DistAvoidingEach([]ftbfs.FailureQuery{{V: 1, FailedU: e[0], FailedV: e[1]}}, nil, nil)
		if errs[0] == nil {
			t.Fatal("reinforced-edge failure accepted")
		}
		break
	}
}

func TestOraclePoolConcurrentMatchesSerial(t *testing.T) {
	g := randomGraph(100, 160, 23)
	st, err := ftbfs.Build(g, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	edges := failableEdges(st)

	// Serial ground truth with a dedicated oracle.
	serial := st.Oracle()
	type q struct {
		v, fu, fv int
		want      int
	}
	var qs []q
	for i, e := range edges {
		v := (i * 13) % g.N()
		d, err := serial.DistAvoiding(v, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q{v, e[0], e[1], d})
	}

	if st.OraclePool() != st.OraclePool() {
		t.Fatal("OraclePool is not idempotent")
	}
	pool := st.OraclePool()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(qs)*4; i += 8 {
				qq := qs[i%len(qs)]
				err := pool.Do(func(o *ftbfs.Oracle) error {
					got, err := o.DistAvoiding(qq.v, qq.fu, qq.fv)
					if err != nil {
						return err
					}
					if got != qq.want {
						t.Errorf("concurrent DistAvoiding(%d,%d,%d) = %d, want %d", qq.v, qq.fu, qq.fv, got, qq.want)
					}
					if o.Dist(qq.v) < 0 {
						t.Errorf("negative intact distance")
					}
					return nil
				})
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
