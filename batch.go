package ftbfs

import (
	"ftbfs/internal/batch"
	"ftbfs/internal/core"
)

// BatchRequest names one structure for BuildBatch: the BFS source, the
// tradeoff parameter ε, and optional per-build options (algorithm choice,
// ablations).
type BatchRequest struct {
	Source  int
	Eps     float64
	Options []BuildOption
}

// BatchOption tunes BuildBatch.
type BatchOption func(*batch.Options)

// WithBatchWorkers sets the size of the batch worker pool (≤ 0 means
// GOMAXPROCS). Parallelism is across sources: requests sharing a source are
// built by one worker so they can share the canonical BFS tree, the
// replacement-path preprocessing and the reinforcement sweep.
func WithBatchWorkers(w int) BatchOption {
	return func(o *batch.Options) { o.Workers = w }
}

// BuildBatch builds FT-BFS structures for many (source, ε, algorithm)
// requests over the shared graph, which is frozen by this call. Compared with
// a loop of Build calls it computes the canonical BFS tree, the Fact 3.3
// decomposition and the Phase S0 replacement paths once per distinct source
// (not once per request), runs one reinforcement sweep per source, recycles
// engine scratch across requests, and dispatches source groups onto a worker
// pool. Results are returned in request order and each structure is
// byte-identical (via Save) to what the corresponding Build call returns; the
// first failing request aborts the batch with its error.
func BuildBatch(g *Graph, reqs []BatchRequest, opts ...BatchOption) ([]*Structure, error) {
	var bo batch.Options
	for _, f := range opts {
		f(&bo)
	}
	g.g.Freeze()
	breqs := make([]batch.Request, len(reqs))
	for i, r := range reqs {
		var o core.Options
		for _, f := range r.Options {
			f(&o)
		}
		breqs[i] = batch.Request{Source: r.Source, Eps: r.Eps, Opt: o}
	}
	sts, err := batch.Build(g.g, breqs, bo)
	if err != nil {
		return nil, err
	}
	out := make([]*Structure, len(sts))
	for i, st := range sts {
		out[i] = &Structure{st: st}
	}
	return out, nil
}
